"""The run executor: declarative run specs, serial or parallel.

The experiment stack evaluates large (scenario × goal × scheme) grids,
and every run in such a grid is independent: it gets a *fresh* engine
and input stream rebuilt from the scenario's root seed (common random
numbers), so no state crosses run boundaries.  This module turns that
independence into an execution plan:

* :class:`ScenarioKey` — the picklable identity of a scenario
  (platform, task, env, candidate set, seed) from which a worker can
  rebuild the full :class:`~repro.workloads.scenarios.Scenario`;
* :class:`RunSpec` — one unit of work: a scenario key, a goal, a
  scheme name, an input count, and a dotted path to the scheme
  factory.  Specs are plain picklable data, so a plan can cross a
  process boundary;
* :class:`CellSpec` — one *fused* unit of work: every scheme of one
  (scenario, goal) cell.  The executing process realises the
  (configuration × input) outcome grid for the cell's timing once and
  serves all schemes from it: feedback-free schemes ride the serving
  loop's batch fast path over grid column slices, and feedback-driven
  schemes (ALERT and friends) still run sequentially but read their
  latency/energy columns from the same grid instead of calling
  :meth:`~repro.models.inference.InferenceEngine.run` per input —
  the amortize-the-simulation trick of trace-driven schedulers:
  many policies, one realisation.  Fused results are value-identical
  to the equivalent isolated :class:`RunSpec` runs
  (``tests/test_cell_fusion_parity.py``);
* :class:`LockstepCellSpec` — one fused *goal-grid* cell: every scheme
  × every goal of a scenario's constraint grid.  On top of the shared
  realisation, schemes that opt in (ALERT & co., Sys-only) advance all
  goals **in lockstep** through a
  :class:`~repro.runtime.loop.LockstepServingLoop` — each input step
  computes every goal's decision in one stacked estimator/selector
  pass (``tests/test_lockstep_parity.py`` pins value-identity to the
  per-goal path);
* :class:`TableCellSpec` — one whole Table-4 cell, *cross-scheme*: all
  stacking schemes advance as lanes of one
  :class:`~repro.runtime.loop.CrossSchemeLockstepLoop`, sharing the
  per-input grid reads; the rest run per-goal (feedback-free schemes on
  the batch fast path), so a fully fused cell serves zero inputs via
  per-input Python ``decide``/``observe``
  (``tests/test_cross_scheme_parity.py``);
* :class:`RunExecutor` — executes a plan either serially in-process or
  across a ``concurrent.futures`` process pool.  Results are merged
  back in plan order, so the output is *bit-identical* regardless of
  worker count: every run derives from its scenario seed, never from
  which worker ran it or in what order.

Each worker keeps a small per-process cache of oracle outcome grids
keyed on ``(scenario, deadline_s, period_s, n_inputs)`` plus the
fingerprint of the candidate configuration list the grid covers — the
grid depends only on the run's *timing* and its configuration rows,
not on the accuracy/energy constraint — so the many goals of a
constraint grid that share one deadline reuse one grid instead of
recomputing it per goal, while schemes evaluating *different*
candidate sets under one timing still get distinct grids.  Scheme
factories can tap the same cache directly by accepting a
``grid_provider`` keyword: a callable ``(space) -> BatchOutcomeGrid``
bound to the executing process's cache and the spec's timing.
"""

from __future__ import annotations

import importlib
import inspect
from collections import OrderedDict
from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.goals import Goal
from repro.errors import ConfigurationError
from repro.models.inference import GridView
from repro.runtime.loop import (
    LOCKSTEP_TELEMETRY,
    CrossSchemeLockstepLoop,
    LockstepServingLoop,
    ServingLoop,
)
from repro.runtime.results import RunResult
from repro.workloads.scenarios import Scenario, build_scenario
from repro.workloads.traces import RequirementTrace

__all__ = [
    "ScenarioKey",
    "RunSpec",
    "CellSpec",
    "LockstepCellSpec",
    "TableCellSpec",
    "RunExecutor",
    "run_single",
    "factory_path",
    "resolve_factory",
    "factory_accepts",
    "factory_accepts_oracle_grid",
    "space_fingerprint",
    "structural_space_fingerprint",
]

#: Default dotted path of the scheme factory (module:attribute).
DEFAULT_FACTORY = "repro.experiments.harness:make_scheme"

#: Upper bound on per-process cached oracle outcome grids.  The cache
#: is LRU: a hit refreshes recency, so a long interleaved plan evicts
#: the grid touched longest ago, not the one inserted first.
_GRID_CACHE_CAPACITY = 32
#: Upper bound on the per-scenario caches (scenarios, spaces, shared
#: engine/stream realisations).  A production sweep walks hundreds of
#: scenarios through one worker; unbounded maps would pin every
#: engine's memoised environment draws for the life of the process.
_SCENARIO_CACHE_CAPACITY = 16
#: Upper bound on resolved scheme-factory callables (keyed by path).
_FACTORY_CACHE_CAPACITY = 64


@dataclass(frozen=True)
class ScenarioKey:
    """Picklable identity of a scenario, rebuildable in any process.

    Workers never receive live :class:`Scenario` objects; they receive
    this key and call :meth:`build`, which derives engines, streams,
    and profiles from the root ``seed`` — the same construction the
    submitting process would have performed.
    """

    platform: str
    task: str
    env: str
    candidates: str = "standard"
    seed: int = 20200417

    def build(self) -> Scenario:
        """Rebuild the full scenario from its seeds."""
        return build_scenario(
            self.platform, self.task, self.env, self.candidates, self.seed
        )

    @classmethod
    def for_scenario(cls, scenario: Scenario) -> "ScenarioKey | None":
        """The key of a scenario, or None when it cannot round-trip.

        Scenarios made by :func:`~repro.workloads.scenarios.build_scenario`
        always round-trip.  Hand-built scenarios may not — a customized
        machine spec or candidate set reusing a stock name must not be
        silently replaced by the stock one in a worker — so the rebuilt
        scenario is compared field by field, not by name.  (An
        explicitly injected ``_profile`` is the one customization this
        cannot see; workers always re-derive the analytic profile.)
        """
        key = cls(
            platform=scenario.machine.name,
            task=scenario.task.kind.value,
            env=scenario.env.value,
            candidates=scenario.candidates.name,
            seed=scenario.seed,
        )
        try:
            rebuilt = key.build()
        except ConfigurationError:
            return None
        if (
            rebuilt.name != scenario.name
            or rebuilt.seed != scenario.seed
            or rebuilt.machine != scenario.machine
            or rebuilt.task != scenario.task
            or rebuilt.env is not scenario.env
            or rebuilt.candidates != scenario.candidates
        ):
            return None
        return key


@dataclass(frozen=True)
class RunSpec:
    """One planned run: scheme × goal × scenario × horizon.

    ``factory`` is a dotted ``"module:attribute"`` path so the spec
    stays picklable; it is resolved in the executing process.  When
    ``use_oracle_grid`` is True and the resolved factory accepts an
    ``oracle_grid`` keyword, the executor supplies the cached
    (configuration × input) outcome grid for the spec's timing.
    ``requirement_trace`` optionally rewrites goals mid-run (Figure 9's
    dynamic requirements); traces are plain picklable data, so they
    cross the process boundary with the spec.
    """

    scenario: ScenarioKey
    goal: Goal
    scheme: str
    n_inputs: int
    factory: str = DEFAULT_FACTORY
    use_oracle_grid: bool = True
    requirement_trace: RequirementTrace | None = None

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ConfigurationError(
                f"need at least one input, got {self.n_inputs}"
            )


@dataclass(frozen=True)
class CellSpec:
    """One fused cell: every scheme of one (scenario, goal) pair.

    The executing process realises the cell's outcome grid once (via
    the per-process timing cache) and serves all ``schemes`` from it
    through a trusted :class:`~repro.models.inference.GridView`; runs
    come back aligned one-to-one with ``schemes``.  ``use_oracle_grid``
    gates only whether the grid is additionally handed to the scheme
    factory as its ``oracle_grid`` keyword — grid-view serving is what
    makes the cell fused and is always on.
    """

    scenario: ScenarioKey
    goal: Goal
    schemes: tuple[str, ...]
    n_inputs: int
    factory: str = DEFAULT_FACTORY
    use_oracle_grid: bool = True
    requirement_trace: RequirementTrace | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.schemes, tuple):
            object.__setattr__(self, "schemes", tuple(self.schemes))
        if not self.schemes:
            raise ConfigurationError("a cell needs at least one scheme")
        if self.n_inputs < 1:
            raise ConfigurationError(
                f"need at least one input, got {self.n_inputs}"
            )


@dataclass(frozen=True)
class LockstepCellSpec:
    """One fused *goal-grid* cell: every scheme × every goal, lockstep.

    The multi-goal generalisation of :class:`CellSpec`: the executing
    process realises one outcome grid per timing (shared across the
    goals and schemes that use it) and serves each scheme's runs over
    **all** ``goals`` together.  ALERT-family runs advance in lockstep
    through one :class:`~repro.runtime.loop.LockstepServingLoop` —
    every input step computes all goals' decisions in one stacked
    estimator/selector pass — while feedback-free schemes and any
    scheduler that cannot stack (custom types, warm state) run
    per-goal exactly as a :class:`CellSpec` would.  Results come back
    goal-major: one list per goal, aligned with ``schemes``, each
    value-identical to the equivalent :class:`CellSpec` runs
    (``tests/test_lockstep_parity.py``).

    ``lockstep=False`` keeps the grouped plan shape but forces every
    run onto the per-goal path (the benches' A/B knob).
    """

    scenario: ScenarioKey
    goals: tuple[Goal, ...]
    schemes: tuple[str, ...]
    n_inputs: int
    factory: str = DEFAULT_FACTORY
    use_oracle_grid: bool = True
    lockstep: bool = True
    requirement_trace: RequirementTrace | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.goals, tuple):
            object.__setattr__(self, "goals", tuple(self.goals))
        if not isinstance(self.schemes, tuple):
            object.__setattr__(self, "schemes", tuple(self.schemes))
        if not self.goals:
            raise ConfigurationError("a lockstep cell needs at least one goal")
        if not self.schemes:
            raise ConfigurationError("a cell needs at least one scheme")
        if self.n_inputs < 1:
            raise ConfigurationError(
                f"need at least one input, got {self.n_inputs}"
            )


@dataclass(frozen=True)
class TableCellSpec(LockstepCellSpec):
    """One whole Table-4 cell: every scheme × every goal, cross-scheme.

    The cross-scheme generalisation of :class:`LockstepCellSpec`: all
    schemes whose schedulers stack become lanes of **one**
    :class:`~repro.runtime.loop.CrossSchemeLockstepLoop`, stepping the
    input stream together off the shared grid views — the per-input
    column resolution is computed once for the whole cell and every
    lane's records are realised goal-major after the run.  Schemes
    that cannot stack (feedback-free schedulers, custom types, warm
    state) run per-goal exactly as a :class:`LockstepCellSpec` would —
    feedback-free schemes ride the batch fast path, so a fully fused
    cell serves zero inputs through per-input Python
    ``decide``/``observe`` calls.  Results are goal-major and
    value-identical to the equivalent :class:`LockstepCellSpec` /
    sequential runs (``tests/test_cross_scheme_parity.py``).

    ``cross_scheme=False`` (or ``lockstep=False``) degrades to the
    per-scheme :class:`LockstepCellSpec` behaviour — the benches' A/B
    knob.
    """

    cross_scheme: bool = True


def resolve_factory(path: str) -> Callable:
    """Import a scheme factory from its ``"module:attribute"`` path."""
    module_name, sep, attribute = path.partition(":")
    if not sep or not module_name or not attribute:
        raise ConfigurationError(
            f"factory path must look like 'module:attribute', got {path!r}"
        )
    module = importlib.import_module(module_name)
    target = module
    for part in attribute.split("."):
        target = getattr(target, part)
    return target


def factory_path(factory: Callable) -> str | None:
    """The importable ``"module:attribute"`` path of a factory, if any.

    Returns None for closures, lambdas, bound methods, and anything
    else that does not resolve back to the same object — those can
    only run in-process.
    """
    module = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        return None
    path = f"{module}:{qualname}"
    try:
        resolved = resolve_factory(path)
    except (ConfigurationError, ImportError, AttributeError):
        return None
    return path if resolved is factory else None


#: Memo of per-(factory, keyword, mode) signature probes, keyed on
#: identity with the factory kept alive (ids cannot be recycled).
#: FIFO-bounded: the closure-fallback path can feed per-call factory
#: objects through here, and an unbounded map would pin every one —
#: plus everything it captured — for the life of the process.
_ACCEPTS_CACHE: OrderedDict[tuple[int, str, bool], tuple[Callable, bool]] = (
    OrderedDict()
)
_ACCEPTS_CACHE_CAPACITY = 256


def factory_accepts(
    factory: Callable, keyword: str, var_keyword: bool = False
) -> bool:
    """Whether a scheme factory can receive ``keyword`` as a kwarg.

    ``var_keyword`` additionally counts a ``**kwargs`` catch-all as
    accepting.  The legacy ``oracle_grid`` handoff keeps that loose
    contract; the newer ``grid_view``/``grid_provider`` hooks require
    the parameter to be named explicitly, so ``**kwargs`` wrappers
    around grid-unaware factories never get surprise keywords (the
    fused serving path does not need the factory's cooperation — the
    executor hands the view to the serving loop directly).
    """
    cache_key = (id(factory), keyword, var_keyword)
    cached = _ACCEPTS_CACHE.get(cache_key)
    if cached is not None and cached[0] is factory:
        return cached[1]
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        signature = None
    accepts = False
    if signature is not None:
        for parameter in signature.parameters.values():
            if var_keyword and parameter.kind is inspect.Parameter.VAR_KEYWORD:
                accepts = True
                break
            if parameter.name == keyword and parameter.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            ):
                accepts = True
                break
    if len(_ACCEPTS_CACHE) >= _ACCEPTS_CACHE_CAPACITY:
        _ACCEPTS_CACHE.popitem(last=False)
    _ACCEPTS_CACHE[cache_key] = (factory, accepts)
    return accepts


def factory_accepts_oracle_grid(factory: Callable) -> bool:
    """Whether a scheme factory can receive an ``oracle_grid`` kwarg."""
    return factory_accepts(factory, "oracle_grid", var_keyword=True)


def space_fingerprint(configs: Iterable) -> tuple:
    """A hashable identity of a candidate configuration list.

    Grids are cached per timing, but two grids over the same timing
    are interchangeable only when their configuration rows match; this
    fingerprint is what the cache keys on.  It includes ``id(model)``
    alongside the display name so two *different* model objects that
    happen to share a name can never alias one grid — safe per process
    because every cached grid keeps its configuration (and therefore
    model) objects alive, pinning the ids in its key; and stable
    because consumers rebuild spaces from the scenario's memoised
    model objects, not fresh copies.
    """
    return tuple(
        (
            id(config.model),
            config.model.name,
            config.power_w,
            config.rung_cap,
        )
        for config in configs
    )


def structural_space_fingerprint(configs: Iterable) -> tuple:
    """A *cross-process* identity of a candidate configuration list.

    The per-process :func:`space_fingerprint` keys on ``id(model)``,
    which never survives a process boundary; the shared grid store
    instead keys on structure — (model name, cap, rung) rows in order.
    Safe there because the store only serves a scenario's *default*
    candidate space, whose rows are a deterministic enumeration of the
    scenario key: same key, same structure, every process.
    """
    return tuple(
        (config.model.name, config.power_w, config.rung_cap)
        for config in configs
    )


def run_single(
    scenario: Scenario,
    goal: Goal,
    scheme: str,
    n_inputs: int,
    factory: Callable,
    oracle_grid=None,
    grid_view: GridView | None = None,
    grid_provider: Callable | None = None,
    engine=None,
    stream=None,
    requirement_trace: RequirementTrace | None = None,
) -> RunResult:
    """Execute one run: one engine + stream, one serving loop.

    The single place both the serial and the pooled paths (and the
    harness's in-process fallback) funnel through, so "one run" means
    exactly the same thing everywhere.  ``grid_view`` feeds the
    serving loop's shared-realisation path; ``grid_view`` and
    ``grid_provider`` are additionally offered to the factory when its
    signature accepts them.  ``engine``/``stream`` default to fresh
    per-run builds; the fused cell path passes shared ones — engines
    are deterministic functions of the scenario seed (actuator and
    meter state never feed back into outcomes) and streams memoise
    their items, so sharing changes wall-clock, not results.
    """
    if engine is None:
        engine = scenario.make_engine()
    if stream is None:
        stream = scenario.make_stream()
    kwargs = {}
    if oracle_grid is not None:
        kwargs["oracle_grid"] = oracle_grid
    if grid_view is not None and factory_accepts(factory, "grid_view"):
        kwargs["grid_view"] = grid_view
    if grid_provider is not None and factory_accepts(factory, "grid_provider"):
        kwargs["grid_provider"] = grid_provider
    scheduler = factory(scheme, scenario, engine, stream, goal, n_inputs, **kwargs)
    return ServingLoop(
        engine, stream, scheduler, goal,
        requirement_trace=requirement_trace, grid_view=grid_view,
    ).run(n_inputs)


def timing_grid(
    scenario: Scenario,
    goal: Goal,
    n_inputs: int,
    space=None,
    engine=None,
    stream=None,
    allocator=None,
):
    """The oracle outcome grid for one (scenario, timing) pair.

    The grid realises every candidate configuration on every input
    under the goal's deadline and period; it does not depend on the
    accuracy floor or energy budget, so every goal sharing the timing
    shares the grid.  ``space`` overrides the scenario's full candidate
    space (custom factories evaluating reduced sets);
    ``engine``/``stream`` reuse an existing realisation (one engine's
    memoised draws serve every timing of a scenario); ``allocator``
    (see :func:`repro.models.inference.buffer_grid_allocator`) lets a
    grid store realise the arrays directly inside a shared segment.
    """
    # Imported lazily: baselines imports repro.runtime, so a module
    # level import here would be circular.
    from repro.baselines.oracle import oracle_outcome_grid

    if space is None:
        space = scenario.space()
    if engine is None:
        engine = scenario.make_engine()
    if stream is None:
        stream = scenario.make_stream()
    return oracle_outcome_grid(
        engine, space, goal, stream, n_inputs, allocator=allocator
    )


class _WorkerState:
    """Per-process caches: scenarios, factories, spaces, outcome grids.

    Every cache is LRU-bounded (hit refreshes recency, insertion at
    capacity evicts the least recently used entry), so a worker that
    walks an arbitrarily large sweep holds a bounded working set.
    ``grid_store`` optionally plugs a cross-process
    :class:`repro.runtime.grid_store.GridStoreClient` under the grid
    cache: a local miss attaches the store's shared copy before falling
    back to realising (and publishing) the grid here.
    """

    def __init__(
        self,
        scenarios: Mapping[ScenarioKey, Scenario] | None = None,
        grid_store=None,
    ):
        self._scenarios: OrderedDict[ScenarioKey, Scenario] = OrderedDict(
            scenarios or {}
        )
        self._factories: OrderedDict[str, Callable] = OrderedDict()
        self._spaces: OrderedDict[ScenarioKey, object] = OrderedDict()
        self._grids: OrderedDict[tuple, object] = OrderedDict()
        self._realisations: OrderedDict[ScenarioKey, tuple] = OrderedDict()
        self._grid_store = grid_store

    @staticmethod
    def _cache_get(cache: OrderedDict, key):
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
        return cached

    @staticmethod
    def _cache_put(cache: OrderedDict, key, value, capacity: int) -> None:
        while len(cache) >= capacity:
            cache.popitem(last=False)
        cache[key] = value

    def scenario(self, key: ScenarioKey) -> Scenario:
        cached = self._cache_get(self._scenarios, key)
        if cached is None:
            cached = key.build()
            self._cache_put(
                self._scenarios, key, cached, _SCENARIO_CACHE_CAPACITY
            )
        return cached

    def factory(self, path: str) -> Callable:
        cached = self._cache_get(self._factories, path)
        if cached is None:
            cached = resolve_factory(path)
            self._cache_put(
                self._factories, path, cached, _FACTORY_CACHE_CAPACITY
            )
        return cached

    def space(self, key: ScenarioKey):
        cached = self._cache_get(self._spaces, key)
        if cached is None:
            cached = self.scenario(key).space()
            self._cache_put(self._spaces, key, cached, _SCENARIO_CACHE_CAPACITY)
        return cached

    def realisation(self, key: ScenarioKey) -> tuple:
        """One shared (engine, stream) pair per scenario.

        Engines are deterministic functions of the scenario seed and
        memoise their environment draws; streams memoise their items.
        Fused cells share this pair across every run and grid build of
        a scenario, so a plan realises each scenario's environment
        exactly once (per residency in the bounded cache).
        """
        cached = self._cache_get(self._realisations, key)
        if cached is None:
            scenario = self.scenario(key)
            cached = (scenario.make_engine(), scenario.make_stream())
            self._cache_put(
                self._realisations, key, cached, _SCENARIO_CACHE_CAPACITY
            )
        return cached

    def grid(self, key: ScenarioKey, goal: Goal, n_inputs: int, space=None):
        if space is None:
            space = self.space(key)
        # The fingerprint keeps grids over *different* candidate lists
        # (grid_provider requests from custom factories) from aliasing
        # under a shared timing.
        cache_key = (
            key,
            goal.deadline_s,
            goal.period,
            n_inputs,
            space_fingerprint(space),
        )
        cached = self._cache_get(self._grids, cache_key)
        if cached is None:
            cached = self._build_grid(key, goal, n_inputs, space)
            self._cache_put(self._grids, cache_key, cached, _GRID_CACHE_CAPACITY)
        return cached

    def _build_grid(self, key: ScenarioKey, goal: Goal, n_inputs: int, space):
        """Attach the shared copy when a store is plugged in, else realise.

        The store only serves the scenario's *default* candidate space:
        its cross-process keys are structural, and only the default
        space's row enumeration is a deterministic function of the
        scenario key (custom ``grid_provider`` spaces stay on the local
        per-process cache).
        """

        def realize(allocator=None):
            engine, stream = self.realisation(key)
            return timing_grid(
                self.scenario(key), goal, n_inputs, space=space,
                engine=engine, stream=stream, allocator=allocator,
            )

        store = self._grid_store
        if store is None or space is not self.space(key):
            return realize()
        store_key = (
            key,
            goal.deadline_s,
            goal.period,
            n_inputs,
            structural_space_fingerprint(space),
        )
        return store.get_or_realize(
            store_key, tuple(space), realize, n_inputs=n_inputs
        )

    def _grid_provider(self, key: ScenarioKey, goal: Goal, n_inputs: int):
        """The cache-backed grid hook offered to capable factories."""

        def provider(space):
            return self.grid(key, goal, n_inputs, space=space)

        return provider

    def execute(
        self, spec: "RunSpec | CellSpec | LockstepCellSpec | TableCellSpec"
    ):
        # TableCellSpec subclasses LockstepCellSpec: most-derived first.
        if isinstance(spec, TableCellSpec):
            return self.execute_table_cell(spec)
        if isinstance(spec, LockstepCellSpec):
            return self.execute_lockstep_cell(spec)
        if isinstance(spec, CellSpec):
            return self.execute_cell(spec)
        scenario = self.scenario(spec.scenario)
        factory = self.factory(spec.factory)
        grid = None
        if spec.use_oracle_grid and factory_accepts_oracle_grid(factory):
            grid = self.grid(spec.scenario, spec.goal, spec.n_inputs)
        provider = None
        if factory_accepts(factory, "grid_provider"):
            provider = self._grid_provider(spec.scenario, spec.goal, spec.n_inputs)
        return run_single(
            scenario, spec.goal, spec.scheme, spec.n_inputs, factory,
            oracle_grid=grid, grid_provider=provider,
            requirement_trace=spec.requirement_trace,
        )

    def execute_cell(self, spec: CellSpec) -> list[RunResult]:
        """Realise one grid, serve every scheme of the cell from it.

        The grid comes from the same per-timing cache the isolated
        path uses, so consecutive cells sharing a timing (a constraint
        grid's goals) still build it once.  The view is trusted: the
        grid and every run's engine derive from the same scenario
        seed, so their environment draws are identical by
        construction.
        """
        scenario = self.scenario(spec.scenario)
        factory = self.factory(spec.factory)
        grid = self.grid(spec.scenario, spec.goal, spec.n_inputs)
        view = GridView(grid, trusted=True)
        oracle_grid = None
        if spec.use_oracle_grid and factory_accepts_oracle_grid(factory):
            oracle_grid = grid
        provider = None
        if factory_accepts(factory, "grid_provider"):
            provider = self._grid_provider(spec.scenario, spec.goal, spec.n_inputs)
        engine, stream = self.realisation(spec.scenario)
        return [
            run_single(
                scenario, spec.goal, scheme, spec.n_inputs, factory,
                oracle_grid=oracle_grid, grid_view=view, grid_provider=provider,
                engine=engine, stream=stream,
                requirement_trace=spec.requirement_trace,
            )
            for scheme in spec.schemes
        ]

    def _lockstep_setup(self, spec: LockstepCellSpec):
        """Shared grid/view/scheduler plumbing of the goal-grid cells.

        Returns ``(engine, stream, views, make_schedulers)`` where
        ``make_schedulers(scheme)`` builds the scheme's per-goal
        schedulers with whatever grid keywords the factory accepts.
        One grid/view per timing (the per-timing cache dedupes goals
        sharing a deadline), one shared engine/stream realisation.
        """
        scenario = self.scenario(spec.scenario)
        factory = self.factory(spec.factory)
        accepts_view = factory_accepts(factory, "grid_view")
        accepts_provider = factory_accepts(factory, "grid_provider")
        share_grid = spec.use_oracle_grid and factory_accepts_oracle_grid(
            factory
        )
        engine, stream = self.realisation(spec.scenario)

        grids = []
        views = []
        views_by_grid: dict[int, GridView] = {}
        for goal in spec.goals:
            grid = self.grid(spec.scenario, goal, spec.n_inputs)
            view = views_by_grid.get(id(grid))
            if view is None:
                view = GridView(grid, trusted=True)
                views_by_grid[id(grid)] = view
            grids.append(grid)
            views.append(view)

        def make_schedulers(scheme: str) -> list:
            schedulers = []
            for g, goal in enumerate(spec.goals):
                kwargs = {}
                if share_grid:
                    kwargs["oracle_grid"] = grids[g]
                if accepts_view:
                    kwargs["grid_view"] = views[g]
                if accepts_provider:
                    kwargs["grid_provider"] = self._grid_provider(
                        spec.scenario, goal, spec.n_inputs
                    )
                schedulers.append(
                    factory(
                        scheme, scenario, engine, stream, goal,
                        spec.n_inputs, **kwargs,
                    )
                )
            return schedulers

        return engine, stream, views, make_schedulers

    def execute_lockstep_cell(
        self, spec: LockstepCellSpec
    ) -> list[list[RunResult]]:
        """Serve every scheme over the whole goal grid of one cell.

        Per scheme: a :class:`LockstepServingLoop` when the built
        schedulers stack, the per-goal :class:`CellSpec`-equivalent
        path otherwise.  Results are goal-major, aligned with
        ``spec.goals`` × ``spec.schemes``.
        """
        engine, stream, views, make_schedulers = self._lockstep_setup(spec)
        results: list[list[RunResult | None]] = [
            [None] * len(spec.schemes) for _ in spec.goals
        ]
        for position, scheme in enumerate(spec.schemes):
            schedulers = make_schedulers(scheme)
            lock = None
            if spec.lockstep:
                lock = LockstepServingLoop.for_schedulers(
                    engine, stream, schedulers, spec.goals, views,
                    requirement_trace=spec.requirement_trace,
                )
            if lock is not None:
                for g, run in enumerate(lock.run(spec.n_inputs)):
                    results[g][position] = run
                continue
            LOCKSTEP_TELEMETRY.record_fallback(len(spec.goals))
            for g, goal in enumerate(spec.goals):
                results[g][position] = ServingLoop(
                    engine, stream, schedulers[g], goal,
                    requirement_trace=spec.requirement_trace,
                    grid_view=views[g],
                ).run(spec.n_inputs)
        return results

    def execute_table_cell(
        self, spec: TableCellSpec
    ) -> list[list[RunResult]]:
        """Serve a whole Table-4 cell in one cross-scheme fused pass.

        Every scheme whose schedulers stack becomes a lane of one
        :class:`~repro.runtime.loop.CrossSchemeLockstepLoop`; all lanes
        step the input stream together, sharing the per-input grid
        reads.  Non-stacking schemes (feedback-free, custom types)
        run per-goal as in :meth:`execute_lockstep_cell` — the
        feedback-free ones ride the batch fast path.  Results are
        goal-major, aligned with ``spec.goals`` × ``spec.schemes``,
        value-identical to the per-scheme path
        (``tests/test_cross_scheme_parity.py``).
        """
        if not (spec.cross_scheme and spec.lockstep):
            return self.execute_lockstep_cell(spec)
        engine, stream, views, make_schedulers = self._lockstep_setup(spec)
        results: list[list[RunResult | None]] = [
            [None] * len(spec.schemes) for _ in spec.goals
        ]
        lanes: list = []
        lane_positions: list[int] = []
        for position, scheme in enumerate(spec.schemes):
            schedulers = make_schedulers(scheme)
            lane = LockstepServingLoop.for_schedulers(
                engine, stream, schedulers, spec.goals, views,
                requirement_trace=spec.requirement_trace,
            )
            if lane is not None:
                lanes.append(lane)
                lane_positions.append(position)
                continue
            LOCKSTEP_TELEMETRY.record_fallback(len(spec.goals))
            for g, goal in enumerate(spec.goals):
                results[g][position] = ServingLoop(
                    engine, stream, schedulers[g], goal,
                    requirement_trace=spec.requirement_trace,
                    grid_view=views[g],
                ).run(spec.n_inputs)
        if lanes:
            fused = CrossSchemeLockstepLoop(lanes).run(spec.n_inputs)
            for position, lane_runs in zip(lane_positions, fused):
                for g, run in enumerate(lane_runs):
                    results[g][position] = run
        return results


#: Lazily-created state of a pool worker process.
_POOL_STATE: _WorkerState | None = None
#: Grid-store client handed to this pool's workers at initialisation.
_POOL_GRID_STORE = None


def _pool_initializer(grid_store=None) -> None:
    """Pool-worker setup: reset state, remember the grid store.

    Runs once per worker process.  Resetting ``_POOL_STATE`` matters
    under fork start methods: a forked worker inherits whatever module
    globals the parent had, and stale state must not leak between
    pools.
    """
    global _POOL_STATE, _POOL_GRID_STORE
    _POOL_STATE = None
    _POOL_GRID_STORE = grid_store


def _pool_execute(spec: "RunSpec | CellSpec | LockstepCellSpec | TableCellSpec"):
    """Top-level pool entry point (must be picklable by reference)."""
    global _POOL_STATE
    if _POOL_STATE is None:
        _POOL_STATE = _WorkerState(grid_store=_POOL_GRID_STORE)
    return _POOL_STATE.execute(spec)


class RunExecutor:
    """Executes a plan of :class:`RunSpec`/:class:`CellSpec` entries.

    Parameters
    ----------
    workers:
        1 executes in-process; >1 fans runs out over a
        ``ProcessPoolExecutor`` of that many workers.  Results come
        back in plan order either way, and because every run rebuilds
        its environment from the scenario seed, parallel output is
        bit-identical to serial output.
    chunksize:
        How many consecutive specs one worker task takes.  Isolated
        plans are typically ordered goal-major, so a chunk the size of
        the scheme list keeps one goal's runs (which share an oracle
        grid) on one worker; fused plans carry one :class:`CellSpec`
        per goal, so the default chunk of 1 is already cell-granular.
    grid_store:
        Optional :class:`repro.runtime.grid_store.GridStoreClient`.
        When given, every executing process (serial or pooled) attaches
        shared-memory outcome grids from the store before realising its
        own — each grid is realised once *per sweep* instead of once
        per worker.  Absent, behaviour is exactly the per-process grid
        cache.
    """

    def __init__(
        self, workers: int = 1, chunksize: int = 1, grid_store=None
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"need at least one worker, got {workers}"
            )
        if chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be at least 1, got {chunksize}"
            )
        self.workers = workers
        self.chunksize = chunksize
        self.grid_store = grid_store

    def run_plan(
        self,
        specs: Iterable["RunSpec | CellSpec | LockstepCellSpec"],
        scenarios: Mapping[ScenarioKey, Scenario] | None = None,
    ) -> list:
        """Execute every spec; results align one-to-one with the plan.

        A :class:`RunSpec` yields one :class:`RunResult`; a
        :class:`CellSpec` yields a list of them, aligned with its
        ``schemes``; a :class:`LockstepCellSpec` or
        :class:`TableCellSpec` yields a goal-major list of such lists.
        ``scenarios`` optionally seeds the serial path's
        scenario cache with already-built objects (preserving their
        memoised profiles); pool workers always rebuild from keys.
        """
        plan = list(specs)
        if not plan:
            return []
        if self.workers == 1 or len(plan) == 1:
            state = _WorkerState(scenarios, grid_store=self.grid_store)
            return [state.execute(spec) for spec in plan]
        n_workers = min(self.workers, len(plan))
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_pool_initializer,
            initargs=(self.grid_store,),
        ) as pool:
            return list(
                pool.map(_pool_execute, plan, chunksize=self.chunksize)
            )
