"""The serving loop: one policy, one scenario, one constraint setting.

Implements the paper's deployment model: inputs arrive periodically;
before each input the policy picks a (DNN, power, rung) configuration;
the engine realises latency, quality, and energy; measurements feed
back to the policy.  The loop owns goal adjustment (workflow step 2):
requirement-trace overrides, shared sentence deadlines, and the
policy's declared overhead reservation.

In the spec → executor → loop architecture the loop is the innermost
layer: :class:`repro.runtime.executor.RunExecutor` turns a declarative
plan of runs into ``ServingLoop.run`` calls (serially or across a
process pool), and the experiment harness builds those plans.

**Three serving paths.**  A run is served one of three ways — the two
:class:`ServingLoop` paths below, plus the multi-goal
:class:`LockstepServingLoop` at the bottom of this module, which
advances every goal of a fused cell's feedback-scheme runs together:

* the *sequential* path — the faithful per-input round trip above,
  required whenever the policy's decisions can depend on observed
  outcomes (ALERT and every feedback scheme), a requirement trace
  rewrites goals mid-run, or inputs share group deadlines (NLP
  sentences), since all three thread state from one input to the next;
* the *batch fast path* — when the policy declares itself
  **feedback-free** (``scheduler.feedback_free`` is True: decisions
  never read observations and ``observe`` is a no-op, e.g. Oracle,
  OracleStatic, App-only) and no cross-input goal state applies, every
  decision is known up front, so the loop realises the whole run as
  one :meth:`~repro.models.inference.InferenceEngine.evaluate_batch`
  pass per distinct configuration plus vectorized violation
  bookkeeping instead of ``n_inputs`` engine round trips.  The fast
  path is pure with respect to the engine's RAPL meter (nothing is
  metered) and matches the sequential records exactly up to
  floating-point associativity (≤ 1 ulp; discrete fields identical),
  pinned by ``tests/test_serving_batch_parity.py``.

**Shared realisations.**  Both paths can additionally serve from a
:class:`~repro.models.inference.GridView` over a precomputed
(configuration × input) outcome grid — the fused-cell execution path
realises one grid per (scenario, timing) and every scheme of the cell
reads it.  On the sequential path each decision that resolves to a
grid (row, column) is answered from the grid instead of
:meth:`InferenceEngine.run` (the actuator is still driven, so effective
caps and end state match the live path; nothing is metered); on the
batch path whole configuration groups become column slices instead of
fresh ``evaluate_batch`` passes.  Any lookup miss — off-grid input,
unknown configuration, quantized cap, trace-adjusted deadline —
falls back to the live engine per input, so a view is always an
optimisation, never a semantics change
(``tests/test_cell_fusion_parity.py`` pins fused ≡ unfused).  The view
comes from the ``grid_view`` constructor argument, or, failing that,
from an optional ``grid_view`` attribute on the scheduler (the
baselines accept one).

Violation bookkeeping follows the paper:

* **latency** — the final answer landed after the (base) deadline;
* **accuracy** — in minimise-energy mode, the delivered quality fell
  below ``accuracy_min``;
* **energy** — in minimise-error mode, the period energy exceeded
  ``energy_budget_j``.
"""

from __future__ import annotations

import numpy as np

from repro.core.goals import Goal, GoalAdjuster
from repro.errors import ConfigurationError
from repro.hw.energy import EnergyBreakdown
from repro.models.inference import GridView, InferenceEngine, InferenceOutcome
from repro.runtime.clock import SimulatedClock
from repro.runtime.results import RunArrays, RunResult, ServedInput
from repro.runtime.scheduler import Scheduler
from repro.workloads.inputs import InputItem, InputStream
from repro.workloads.traces import RequirementTrace

__all__ = [
    "ServingLoop",
    "LockstepServingLoop",
    "CrossSchemeLockstepLoop",
    "LockstepTelemetry",
    "LOCKSTEP_TELEMETRY",
]


class LockstepTelemetry:
    """In-process counters for the lockstep decision path.

    Benches and smoke artifacts read these to show decision-path
    health (how many runs took the lockstep path, the stacked batch
    sizes, memo hit rates) without threading plumbing through every
    result type.  Counters are per-process: pool workers accumulate
    their own and the numbers are meaningful for ``workers=1`` runs,
    which is how the benches use them.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.lockstep_cells = 0
        self.lockstep_runs = 0
        self.fallback_runs = 0
        self.stacked_calls = 0
        self.stacked_states = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.sequential_inputs = 0
        self.cross_cells = 0
        self.cross_lanes = 0

    def record_cell(self, cell) -> None:
        """Fold in one finished cell's counters.

        ``cell`` is any stacked cell controller exposing the
        ``lockstep_stats`` dict built by
        :func:`repro.core.controller.lockstep_stats_dict` (the shared
        shape contract) — e.g. ``AlertCellController`` or
        ``SysOnlyCellController``.
        """
        stats = cell.lockstep_stats
        self.lockstep_cells += 1
        self.lockstep_runs += stats["goals"]
        self.stacked_calls += stats["stacked_calls"]
        self.stacked_states += stats["stacked_states"]
        self.memo_hits += stats["memo_hits"]
        self.memo_misses += stats["memo_misses"]

    def record_fallback(self, n_runs: int = 1) -> None:
        self.fallback_runs += n_runs

    def record_sequential(self, n_inputs: int) -> None:
        """Count inputs served by per-input Python decide/observe.

        Incremented by the sequential reference path only; a fully
        fused cell (stacked schemes in lockstep, feedback-free schemes
        on the batch path) leaves this at zero, which the cross-scheme
        acceptance tests assert.
        """
        self.sequential_inputs += n_inputs

    def record_cross(self, n_lanes: int) -> None:
        """Count one cross-scheme fused pass over ``n_lanes`` schemes."""
        self.cross_cells += 1
        self.cross_lanes += n_lanes

    def snapshot(self) -> dict:
        calls = self.stacked_calls
        memo_total = self.memo_hits + self.memo_misses
        return {
            "lockstep_cells": self.lockstep_cells,
            "lockstep_runs": self.lockstep_runs,
            "fallback_runs": self.fallback_runs,
            "stacked_calls": calls,
            "stacked_states": self.stacked_states,
            "mean_batch_size": (
                round(self.stacked_states / calls, 2) if calls else 0.0
            ),
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            # The ROADMAP's "memo never hits in-run" observation, kept
            # honest by the artifact: the benches surface this rate.
            "memo_hit_rate": (
                round(self.memo_hits / memo_total, 4) if memo_total else 0.0
            ),
            "sequential_inputs": self.sequential_inputs,
            "cross_cells": self.cross_cells,
            "cross_lanes": self.cross_lanes,
        }


#: Process-wide lockstep counters (reset from benches before a run).
LOCKSTEP_TELEMETRY = LockstepTelemetry()


class _CapOverride:
    """A configuration view evaluated at the actuator's effective cap.

    The sequential path runs physics at the cap the actuator actually
    enforced; the batch path mirrors that by re-labelling the
    configuration with the effective cap before the grid evaluation.
    """

    __slots__ = ("model", "power_w", "rung_cap")

    def __init__(self, model, power_w: float, rung_cap: int | None) -> None:
        self.model = model
        self.power_w = power_w
        self.rung_cap = rung_cap


class ServingLoop:
    """Drives one scheduler over one engine and input stream.

    Parameters
    ----------
    engine:
        The inference engine (owns the environment realisation).
    stream:
        The input stream (owns work factors and grouping).
    scheduler:
        The policy under evaluation.
    goal:
        The base constraint setting.
    requirement_trace:
        Optional mid-run requirement changes.
    adjuster:
        Goal adjuster; a fresh one is built when omitted.
    grid_view:
        Optional shared-realisation view (see the module docstring).
        When omitted, the loop probes the scheduler for a ``grid_view``
        attribute.
    clock:
        The :class:`~repro.runtime.clock.SimulatedClock` this driver
        advances (a fresh one is built when omitted).  The loop ticks
        it by each served input's occupied time
        (``max(latency, period)`` — the blocking-device model), so
        after a run ``clock.now()`` is the simulated wall time the
        trace consumed.  Decisions never read it: the kernel split
        keeps the policy clock-free, and this loop is just one driver
        of the kernel (the :mod:`repro.serve` front-end is another).
    """

    def __init__(
        self,
        engine: InferenceEngine,
        stream: InputStream,
        scheduler: Scheduler,
        goal: Goal,
        requirement_trace: RequirementTrace | None = None,
        adjuster: GoalAdjuster | None = None,
        grid_view: GridView | None = None,
        clock: SimulatedClock | None = None,
    ) -> None:
        self.engine = engine
        self.stream = stream
        self.scheduler = scheduler
        self.goal = goal
        self.trace = requirement_trace or RequirementTrace()
        self.adjuster = adjuster if adjuster is not None else GoalAdjuster()
        self.clock = clock if clock is not None else SimulatedClock()
        if grid_view is None:
            grid_view = getattr(scheduler, "grid_view", None)
        self.grid_view = grid_view
        # Batch-path configuration tuples, keyed on (model, effective
        # cap, rung): reusing the same tuple object across runs lets
        # the engine's identity-keyed config-table memo hit.
        self._batch_configs: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # Goal plumbing
    # ------------------------------------------------------------------
    def _base_goal_at(self, index: int) -> Goal:
        """The base goal with any requirement-trace override applied."""
        if self.trace.is_empty:
            return self.goal
        return self.trace.apply(self.goal, index)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def batch_eligible(self, items: list[InputItem]) -> bool:
        """Whether the run can take the feedback-free batch fast path.

        Requires a scheduler that declares ``feedback_free``, no
        requirement trace, no deadline-sharing groups among the items,
        and an adjuster that is not mid-group from an earlier run —
        anything else threads state between inputs.  Streams declaring
        ``has_groups`` False (the :class:`InputStream` contract) skip
        the per-item group scan.
        """
        if not getattr(self.scheduler, "feedback_free", False):
            return False
        if not self.trace.is_empty:
            return False
        if self.adjuster.mid_group:
            return False
        if not self.stream.has_groups:
            return True
        return all(item.group_size == 1 for item in items)

    def run(self, n_inputs: int, batch: bool | None = None) -> RunResult:
        """Serve ``n_inputs`` inputs and aggregate the records.

        ``batch`` selects the serving path: None (the default) takes
        the batch fast path whenever :meth:`batch_eligible` allows it,
        False forces the sequential reference path, and True demands
        the fast path (raising :class:`ConfigurationError` when the
        run is ineligible — useful in tests and benchmarks).
        """
        if n_inputs < 1:
            raise ConfigurationError(f"need at least one input, got {n_inputs}")
        items = self.stream.items(n_inputs)
        if batch is None:
            batch = self.batch_eligible(items)
        elif batch and not self.batch_eligible(items):
            raise ConfigurationError(
                f"scheduler {self.scheduler.name!r} cannot take the batch "
                "path: it needs feedback, a requirement trace is active, "
                "or inputs share group deadlines"
            )
        if batch:
            arrays, materialize = self._run_batch(items)
            return RunResult(
                scheduler_name=self.scheduler.name, goal=self.goal,
                arrays=arrays, materialize=materialize,
            )
        records = self._run_sequential(items)
        return RunResult(
            scheduler_name=self.scheduler.name, goal=self.goal, records=records
        )

    # ------------------------------------------------------------------
    # Sequential reference path
    # ------------------------------------------------------------------
    def _grid_outcome(
        self, view: GridView, config, item: InputItem, adjusted: Goal, period: float
    ) -> InferenceOutcome | None:
        """Serve one decision from the shared grid, or None on any miss.

        Mirrors :meth:`InferenceEngine.run` exactly minus the metering:
        the actuator is driven to the requested cap, the outcome is the
        grid row realised at the cap the actuator actually enforced,
        and the reported ``power_cap_w`` is the machine-clamped request.
        """
        engine = self.engine
        index = item.index
        effective = engine.actuator.set_power_cap(config.power_w)
        row = view.row_for(config.model, effective, config.rung_cap)
        if row is None:
            return None
        position = view.column_for(index, item.work_factor)
        if position is None:
            return None
        if not view.trusted and not view.env_matches(engine, index, position):
            return None
        return view.outcome(
            row,
            position,
            index=index,
            power_cap_w=engine.machine.clamp_power(config.power_w),
            deadline_s=adjusted.deadline_s,
            period_s=period,
        )

    def _run_sequential(self, items: list[InputItem]) -> list[ServedInput]:
        """The per-input round trip: decide → run → observe → record."""
        LOCKSTEP_TELEMETRY.record_sequential(len(items))
        records: list[ServedInput] = []
        # Resolve the optional state accessor once per run, not per
        # input; the state itself is still read per input (ALERT's ξ
        # belief evolves with every observation — Figure 9's traces).
        has_state = hasattr(self.scheduler, "state")
        view = self.grid_view
        for item in items:
            index = item.index
            base_goal = self._base_goal_at(index)
            adjusted = self.adjuster.adjust(base_goal, item)

            config = self.scheduler.decide(item, adjusted)
            outcome = None
            if view is not None and view.matches_timing(
                adjusted.deadline_s, base_goal.period
            ):
                outcome = self._grid_outcome(
                    view, config, item, adjusted, base_goal.period
                )
            if outcome is None:
                outcome = self.engine.run(
                    model=config.model,
                    power_cap_w=config.power_w,
                    index=index,
                    deadline_s=adjusted.deadline_s,
                    period_s=base_goal.period,
                    work_factor=item.work_factor,
                    rung_cap=config.rung_cap,
                )
            self.scheduler.observe(outcome)
            self.adjuster.consume(item, outcome.latency_s)
            xi_mean, xi_sigma = 0.0, 0.0
            if has_state:
                state = self.scheduler.state
                xi_mean, xi_sigma = state.xi_mean, state.xi_sigma
            records.append(
                self._record(
                    item_goal=base_goal,
                    adjusted=adjusted,
                    outcome=outcome,
                    xi_mean=xi_mean,
                    xi_sigma=xi_sigma,
                )
            )
        return records

    def _record(
        self,
        item_goal: Goal,
        adjusted: Goal,
        outcome,
        xi_mean: float = 0.0,
        xi_sigma: float = 0.0,
    ) -> ServedInput:
        """Build the per-input record with violation flags.

        Tolerances live in one place — :mod:`repro.core.goals` — shared
        with the oracles' feasibility masks, so "violated" means the
        same thing to the bookkeeping and to the perfect-knowledge
        baselines.

        Also the "input served" commit point: every non-batch path
        (sequential, lockstep stepwise, cross-scheme) records through
        here, so this is where the simulated clock advances by the
        input's occupied time.
        """
        latency = outcome.latency_s
        period = outcome.period_s
        self.clock.tick(latency if latency > period else period)
        latency_violation = not outcome.met_deadline
        accuracy_violation = bool(item_goal.quality_violated(outcome.quality))
        energy_violation = bool(item_goal.energy_violated(outcome.energy_j))

        return ServedInput(
            outcome=outcome,
            goal=item_goal,
            effective_deadline_s=adjusted.deadline_s,
            latency_violation=latency_violation,
            accuracy_violation=accuracy_violation,
            energy_violation=energy_violation,
            xi_mean=xi_mean,
            xi_sigma=xi_sigma,
        )

    # ------------------------------------------------------------------
    # Feedback-free batch fast path
    # ------------------------------------------------------------------
    def _run_batch(self, items: list[InputItem]):
        """Realise a feedback-free run in vectorized passes.

        All decisions are collected up front (``decide_batch`` when the
        scheduler offers it), grouped by configuration, and each group
        is realised with one pure ``evaluate_batch`` pass at the cap
        the actuator would have enforced; violation flags are computed
        on the whole arrays.  Nothing is metered and ``observe`` is
        never called (feedback-free policies declare it a no-op).

        Returns ``(arrays, materialize)``: the run's vectorized
        :class:`~repro.runtime.results.RunArrays` plus a thunk that
        assembles the per-input :class:`ServedInput` list on demand.
        Building 3·n record objects is the fast path's dominant cost,
        and summary-only consumers (the sweep driver) never need them
        — :class:`~repro.runtime.results.RunResult` defers the build
        to first ``records`` access.  All engine side effects (actuator
        caps, the simulated clock) still happen here, eagerly.
        """
        base_goal = self.goal
        # Trace is empty and no item is grouped, so the adjusted goal
        # (overhead reservation only) is the same for every input.
        adjusted = self.adjuster.adjust(base_goal, items[0])
        scheduler = self.scheduler
        decide_batch = getattr(scheduler, "decide_batch", None)
        if decide_batch is not None:
            configs = decide_batch(items, adjusted)
        else:
            configs = [scheduler.decide(item, adjusted) for item in items]

        engine = self.engine
        clamp = engine.machine.clamp_power
        deadline = adjusted.deadline_s
        period = base_goal.period
        item_indices = [item.index for item in items]

        # Group input positions by decided configuration.  Identity
        # grouping suffices: schedulers hand out their candidate
        # objects, so equal decisions are the same object (and a
        # duplicate object would only cost one extra engine pass).
        groups: dict[int, list[int]] = {}
        group_config: dict[int, object] = {}
        for position, config in enumerate(configs):
            key = id(config)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [position]
                group_config[key] = config
            else:
                bucket.append(position)

        n = len(items)
        # Whole-run series, filled group by group from the same numpy
        # rows the records are built from (so aggregates over either
        # are bit-identical).
        arr_latency = np.empty(n)
        arr_quality = np.empty(n)
        arr_energy = np.empty(n)
        arr_metric = np.empty(n)
        arr_violated = np.empty(n, dtype=bool)
        arr_missed = np.empty(n, dtype=bool)
        # Per-group payloads captured for the deferred record build.
        group_payloads = []
        # Occupied simulated time across the run (the per-input ticks
        # the sequential path would have made), folded into the clock
        # in one tick_many at the end.
        total_occupied = 0.0

        # Shared-realisation serving: when a grid view covers this
        # run's timing and every input, configuration groups become
        # column slices of the precomputed grid instead of fresh
        # evaluate_batch passes.
        view = self.grid_view
        grid = None
        grid_columns = None
        if view is not None and view.matches_timing(deadline, period):
            grid_columns = view.columns_for(
                item_indices, [item.work_factor for item in items]
            )
            if grid_columns is not None and not view.trusted:
                engine.environment(max(item_indices))
                observed = np.array(
                    [engine.environment(i).env_factor for i in item_indices],
                    dtype=float,
                )
                if not np.array_equal(
                    observed, view.grid.env_factor[grid_columns]
                ):
                    grid_columns = None
            if grid_columns is not None:
                grid = view.grid

        # Feedback-free schedulers promise constant state (observe is
        # a no-op), so the belief trace is one snapshot for the run.
        state = getattr(scheduler, "state", None)
        if state is not None:
            xi_mean, xi_sigma = state.xi_mean, state.xi_sigma
        else:
            xi_mean, xi_sigma = 0.0, 0.0

        for key, positions in groups.items():
            config = group_config[key]
            model = config.model
            effective = engine.actuator.set_power_cap(config.power_w)
            requested = clamp(config.power_w)
            row = None
            if grid is not None:
                row = view.row_for(model, effective, config.rung_cap)
            if row is not None:
                cols = grid_columns[positions]
                power = float(grid.inference_power_w[row])
                met_row = grid.met_deadline[row, cols]
                quality_row = grid.quality[row, cols]
                energy_row = grid.energy_j[row, cols]
                latency_row = grid.latency_s[row, cols]
                latency = latency_row.tolist()
                full = grid.full_latency_s[row, cols].tolist()
                rungs = grid.completed_rungs[row, cols].tolist()
                inference_j = grid.inference_j[row, cols].tolist()
                idle_j = grid.idle_j[row, cols].tolist()
                idle_power = grid.idle_power_w[row, cols].tolist()
                env = grid.env_factor[cols].tolist()
            else:
                shim_key = (id(model), effective, config.rung_cap)
                shim = self._batch_configs.get(shim_key)
                if shim is None:
                    shim = (_CapOverride(model, effective, config.rung_cap),)
                    self._batch_configs[shim_key] = shim
                column = engine.evaluate_batch(
                    configs=shim,
                    indices=[item_indices[p] for p in positions],
                    deadline_s=deadline,
                    period_s=period,
                    work_factors=[items[p].work_factor for p in positions],
                )
                power = float(column.inference_power_w[0])
                met_row = column.met_deadline[0]
                quality_row = column.quality[0]
                energy_row = column.energy_j[0]
                latency_row = column.latency_s[0]
                latency = latency_row.tolist()
                full = column.full_latency_s[0].tolist()
                rungs = column.completed_rungs[0].tolist()
                inference_j = column.inference_j[0].tolist()
                idle_j = column.idle_j[0].tolist()
                idle_power = column.idle_power_w[0].tolist()
                env = column.env_factor.tolist()

            model_name = model.name
            total_occupied += sum(
                t if t > period else period for t in latency
            )
            met = met_row.tolist()
            quality = quality_row.tolist()
            metric = model.task.quality_to_metric_list(quality)

            # Vectorized violation bookkeeping (one place of tolerance
            # truth: repro.core.goals, shared with the sequential
            # _record and the oracles' feasibility masks).
            missed_row = np.logical_not(met_row)
            latency_violation = missed_row.tolist()
            accuracy = base_goal.quality_violated(quality_row)
            if isinstance(accuracy, np.ndarray):
                accuracy_row = accuracy
            else:
                accuracy_row = np.full(len(positions), bool(accuracy))
            accuracy_violation = accuracy_row.tolist()
            budget = base_goal.energy_violated(energy_row)
            if isinstance(budget, np.ndarray):
                budget_row = budget
            else:
                budget_row = np.full(len(positions), bool(budget))
            energy_violation = budget_row.tolist()

            arr_latency[positions] = latency_row
            arr_quality[positions] = quality_row
            arr_energy[positions] = energy_row
            arr_metric[positions] = metric
            arr_violated[positions] = missed_row | accuracy_row | budget_row
            arr_missed[positions] = missed_row

            group_payloads.append((
                positions, model_name, power, requested, effective,
                met, quality, metric, latency, full, rungs,
                inference_j, idle_j, idle_power, env,
                latency_violation, accuracy_violation, energy_violation,
            ))
        # The sequential path leaves the actuator at the last decision.
        engine.actuator.set_power_cap(configs[-1].power_w)
        self.clock.tick_many(total_occupied, n)

        arrays = RunArrays(
            latency_s=arr_latency, quality=arr_quality, energy_j=arr_energy,
            metric_value=arr_metric, violated=arr_violated,
            latency_violation=arr_missed,
        )

        def materialize() -> list[ServedInput]:
            # Records are assembled by direct __dict__ fill: the frozen
            # dataclass __init__ (one object.__setattr__ per field) is
            # this build's dominant cost, and these classes have no
            # __post_init__ to skip.  The parity suite pins the result
            # against constructor-built sequential records field by
            # field.  The closure holds only plain per-group lists —
            # no engine or grid references.
            records: list[ServedInput | None] = [None] * n
            fill = object.__setattr__  # frozen dataclasses veto assignment
            for (
                positions, model_name, power, requested, effective,
                met, quality, metric, latency, full, rungs,
                inference_j, idle_j, idle_power, env,
                latency_violation, accuracy_violation, energy_violation,
            ) in group_payloads:
                for j, position in enumerate(positions):
                    energy = object.__new__(EnergyBreakdown)
                    fill(energy, "__dict__", {
                        "inference_j": inference_j[j],
                        "idle_j": idle_j[j],
                    })
                    outcome = object.__new__(InferenceOutcome)
                    fill(outcome, "__dict__", {
                        "index": item_indices[position],
                        "model_name": model_name,
                        "power_cap_w": requested,
                        "effective_cap_w": effective,
                        "latency_s": latency[j],
                        "full_latency_s": full[j],
                        "met_deadline": met[j],
                        "quality": quality[j],
                        "metric_value": metric[j],
                        "completed_rungs": rungs[j],
                        "energy": energy,
                        "inference_power_w": power,
                        "idle_power_w": idle_power[j],
                        "env_factor": env[j],
                        "deadline_s": deadline,
                        "period_s": period,
                    })
                    record = object.__new__(ServedInput)
                    fill(record, "__dict__", {
                        "outcome": outcome,
                        "goal": base_goal,
                        "effective_deadline_s": deadline,
                        "latency_violation": latency_violation[j],
                        "accuracy_violation": accuracy_violation[j],
                        "energy_violation": energy_violation[j],
                        "xi_mean": xi_mean,
                        "xi_sigma": xi_sigma,
                    })
                    records[position] = record
            return records

        return arrays, materialize


class LockstepServingLoop:
    """Serve every goal of a cell's ALERT-family scheme in lockstep.

    All goals advance input-by-input **together**: one stacked
    :meth:`~repro.core.controller.AlertCellController.decide_many` pass
    computes every goal's decision (single fused erf / lexsort per
    step), each goal's outcome is read from its timing's shared
    :class:`~repro.models.inference.GridView` (live-engine fallback on
    any miss), and one stacked ``observe_many`` pass folds all
    measurements back in.  Per-goal goal adjustment, violation
    bookkeeping, and record assembly reuse the sequential
    :class:`ServingLoop` helpers, so each goal's :class:`RunResult` is
    value-identical to serving that goal alone on the sequential path
    (``tests/test_lockstep_parity.py``; the acceptance bar is
    discrete-exact + floats ≤1e-12).

    Build through :meth:`for_schedulers`, which returns ``None`` —
    sending the caller to the sequential path — whenever the runs
    cannot advance in lockstep: custom scheduler types, incompatible
    or already-warm controllers.
    """

    def __init__(self, loops: list[ServingLoop], cell) -> None:
        """``cell`` is a stacked cell controller (``decide_many`` /
        ``observe_many`` / ``xi_snapshot`` / ``lockstep_stats``), e.g.
        :class:`~repro.core.controller.AlertCellController`."""
        if not loops:
            raise ConfigurationError("a lockstep cell needs at least one run")
        if len(loops) != cell.n_goals:
            raise ConfigurationError(
                f"cell tracks {cell.n_goals} goals but {len(loops)} runs given"
            )
        self.loops = loops
        self.cell = cell

    @classmethod
    def for_schedulers(
        cls,
        engine: InferenceEngine,
        stream: InputStream,
        schedulers,
        goals,
        grid_views,
        requirement_trace: RequirementTrace | None = None,
    ) -> "LockstepServingLoop | None":
        """A lockstep loop over one scheme's per-goal runs, or None.

        ``schedulers``/``goals``/``grid_views`` align one-to-one.  A
        scheduler class opts into lockstep by defining a
        ``stack_into_cell(schedulers)`` staticmethod **on the class
        itself** that returns a stacked cell controller (or None when
        the given instances cannot stack — warm state, mismatched
        spaces).  The hook is looked up on the exact class, never
        inherited, so subclasses with overridden behaviour fall back
        to the sequential reference path unless they re-opt in.
        :class:`~repro.runtime.scheduler.AlertScheduler` and
        :class:`~repro.baselines.sys_only.SysOnlyScheduler` define it.
        """
        if len(schedulers) < 1 or len(schedulers) != len(goals):
            return None
        leader = type(schedulers[0])
        if any(type(s) is not leader for s in schedulers):
            return None
        builder = leader.__dict__.get("stack_into_cell")
        if builder is None:
            return None
        cell = builder.__get__(None, leader)(schedulers)
        if cell is None:
            return None
        loops = [
            ServingLoop(
                engine, stream, scheduler, goal,
                requirement_trace=requirement_trace, grid_view=view,
            )
            for scheduler, goal, view in zip(schedulers, goals, grid_views)
        ]
        return cls(loops, cell)

    def run(self, n_inputs: int) -> list[RunResult]:
        """Serve ``n_inputs`` inputs for every goal; results align with
        the constructor's run order.

        Delegates to a single-lane :class:`CrossSchemeLockstepLoop`, so
        even a lone scheme's lockstep run gets the deferred goal-major
        record fill when it is eligible.
        """
        return CrossSchemeLockstepLoop([self]).run(n_inputs)[0]

    def _run_stepwise(self, items: list[InputItem]) -> list[RunResult]:
        """The per-step reference path: adjust → decide_many → serve →
        observe_many → record, one input at a time.

        Required whenever per-step state threads between inputs beyond
        the stacked filters themselves (a requirement trace rewriting
        goals, deadline-sharing groups); the fused fast path in
        :class:`CrossSchemeLockstepLoop` matches it bit-for-bit when
        neither applies.
        """
        loops = self.loops
        cell = self.cell
        n_goals = len(loops)
        records: list[list[ServedInput]] = [[] for _ in range(n_goals)]
        bases: list[Goal] = [None] * n_goals  # type: ignore[list-item]
        adjusted: list[Goal] = [None] * n_goals  # type: ignore[list-item]
        outcomes: list[InferenceOutcome] = [None] * n_goals  # type: ignore[list-item]

        for item in items:
            for g, loop in enumerate(loops):
                base = loop._base_goal_at(item.index)
                bases[g] = base
                adjusted[g] = loop.adjuster.adjust(base, item)
            selections = cell.decide_many(adjusted)
            for g, loop in enumerate(loops):
                config = selections[g].config
                outcome = None
                view = loop.grid_view
                if view is not None and view.matches_timing(
                    adjusted[g].deadline_s, bases[g].period
                ):
                    outcome = loop._grid_outcome(
                        view, config, item, adjusted[g], bases[g].period
                    )
                if outcome is None:
                    outcome = loop.engine.run(
                        model=config.model,
                        power_cap_w=config.power_w,
                        index=item.index,
                        deadline_s=adjusted[g].deadline_s,
                        period_s=bases[g].period,
                        work_factor=item.work_factor,
                        rung_cap=config.rung_cap,
                    )
                outcomes[g] = outcome
            cell.observe_many(outcomes)
            # Schedulers without a ``state`` attribute record 0/0 on
            # the sequential path; a cell returning None mirrors that.
            snapshot = cell.xi_snapshot()
            for g, loop in enumerate(loops):
                loop.adjuster.consume(item, outcomes[g].latency_s)
                records[g].append(
                    loop._record(
                        item_goal=bases[g],
                        adjusted=adjusted[g],
                        outcome=outcomes[g],
                        xi_mean=(
                            float(snapshot[0][g]) if snapshot is not None else 0.0
                        ),
                        xi_sigma=(
                            float(snapshot[1][g]) if snapshot is not None else 0.0
                        ),
                    )
                )
        LOCKSTEP_TELEMETRY.record_cell(cell)
        return [
            RunResult(
                scheduler_name=loop.scheduler.name,
                goal=loop.goal,
                records=records[g],
            )
            for g, loop in enumerate(loops)
        ]


class _ObservedProxy:
    """Grid-read measurement record for the stacked observe pass.

    Carries exactly the fields the stacked cell controllers' measurement
    conventions read (``observe_many`` over ALERT, Sys-only, No-coord):
    the proxy contract.  One mutable instance per goal is refilled from
    the grid arrays each step — ``observe_many`` consumes the values
    immediately, so nothing is retained — sparing the fused loop a full
    :class:`~repro.models.inference.InferenceOutcome` construction per
    (goal, input) just to feed six numbers to the filters.
    """

    __slots__ = (
        "model_name",
        "power_cap_w",
        "latency_s",
        "full_latency_s",
        "idle_power_w",
        "period_s",
    )


class CrossSchemeLockstepLoop:
    """Advance a whole Table-4 cell — every scheme's lockstep lanes —
    over one input stream.

    Each *lane* is a :class:`LockstepServingLoop` (one scheme, all
    goals).  Lanes share the per-input grid bookkeeping: the per-view
    column resolution is computed once per (view, engine) pair and
    reused by every lane and goal that reads that view, and each lane's
    records are realised *after* the stepping loop in one goal-major
    direct-``__dict__`` fill from the grid columns (the PR 3 batch-path
    fill, extended to feedback schemes) instead of per-(goal, input)
    Python record construction.  During the stepping loop only the
    stacked filters advance: one ``decide_many`` and one
    ``observe_many`` per lane per step, fed by lightweight
    :class:`_ObservedProxy` reads — zero per-input Python
    ``decide``/``observe`` calls.

    A lane that threads per-step state beyond its filters (a
    requirement trace, deadline-sharing groups, an adjuster already
    mid-group) runs on the per-step reference path
    (:meth:`LockstepServingLoop._run_stepwise`) instead; either way
    every goal's :class:`RunResult` is value-identical to serving that
    goal alone sequentially (``tests/test_cross_scheme_parity.py``:
    discrete exact, floats ≤ 1e-12, pool ≡ serial).
    """

    def __init__(self, lanes: "list[LockstepServingLoop]") -> None:
        if not lanes:
            raise ConfigurationError(
                "a cross-scheme cell needs at least one lockstep lane"
            )
        stream = lanes[0].loops[0].stream
        for lane in lanes:
            for loop in lane.loops:
                if loop.stream is not stream:
                    raise ConfigurationError(
                        "cross-scheme lanes must share one input stream"
                    )
        self.lanes = lanes
        self.stream = stream

    def run(self, n_inputs: int) -> "list[list[RunResult]]":
        """Serve ``n_inputs`` for every lane; results align lane-major
        with the constructor's lane order, goal-major within a lane."""
        if n_inputs < 1:
            raise ConfigurationError(f"need at least one input, got {n_inputs}")
        items = self.stream.items(n_inputs)
        grouped = self.stream.has_groups and any(
            item.group_size > 1 for item in items
        )
        if len(self.lanes) > 1:
            LOCKSTEP_TELEMETRY.record_cross(len(self.lanes))
        column_cache: dict[tuple[int, int], np.ndarray] = {}
        results = []
        for lane in self.lanes:
            if self._fast_eligible(lane, grouped):
                results.append(self._run_fast(lane, items, column_cache))
            else:
                results.append(lane._run_stepwise(items))
        return results

    @staticmethod
    def _fast_eligible(lane: "LockstepServingLoop", grouped: bool) -> bool:
        """Whether a lane's goal state is constant across the run.

        Mirrors :meth:`ServingLoop.batch_eligible` minus the
        feedback-free requirement: the stacked filters *are* the
        feedback, but the per-goal base and adjusted goals must not
        change from one input to the next.
        """
        if grouped:
            return False
        return all(
            loop.trace.is_empty and not loop.adjuster.mid_group
            for loop in lane.loops
        )

    def _columns(
        self, view: GridView, engine: InferenceEngine, items: list[InputItem]
    ) -> np.ndarray:
        """Per-step grid columns for one view (-1 where any miss)."""
        positions = np.full(len(items), -1, dtype=np.int64)
        trusted = view.trusted
        for position, item in enumerate(items):
            column = view.column_for(item.index, item.work_factor)
            if column is None:
                continue
            if not trusted and not view.env_matches(engine, item.index, column):
                continue
            positions[position] = column
        return positions

    def _run_fast(
        self,
        lane: "LockstepServingLoop",
        items: list[InputItem],
        column_cache: dict,
    ) -> "list[RunResult]":
        loops = lane.loops
        cell = lane.cell
        n_goals = len(loops)
        n = len(items)

        # Goal state is constant across the run (the eligibility
        # gate): one base/adjusted pair per goal, like the batch path.
        bases = [loop.goal for loop in loops]
        adjusteds = [
            loop.adjuster.adjust(loop.goal, items[0]) for loop in loops
        ]
        periods = [base.period for base in bases]
        deadlines = [adjusted.deadline_s for adjusted in adjusteds]

        # Column resolution is shared across every lane and goal
        # reading one view — the cross-scheme win on the read side.
        cols: list[np.ndarray | None] = []
        for g, loop in enumerate(loops):
            view = loop.grid_view
            if view is None or not view.matches_timing(
                deadlines[g], periods[g]
            ):
                cols.append(None)
                continue
            cache_key = (id(view), id(loop.engine))
            cached = column_cache.get(cache_key)
            if cached is None:
                cached = self._columns(view, loop.engine, items)
                column_cache[cache_key] = cached
            cols.append(cached)

        rows = np.full((n_goals, n), -1, dtype=np.int64)
        requested = np.zeros((n_goals, n), dtype=np.float64)
        fallbacks: list[dict[int, InferenceOutcome]] = [
            {} for _ in range(n_goals)
        ]
        proxies = [_ObservedProxy() for _ in range(n_goals)]
        observed: list = [None] * n_goals
        # (view, config) -> (row or -1, requested clamped cap).  Config
        # identities are stable (schedulers hand out their candidate
        # objects), so the actuator/row resolution runs once per
        # distinct decision instead of once per (goal, input).
        row_memo: dict[tuple[int, int], tuple[int, float]] = {}
        xi_mean_hist: np.ndarray | None = None
        xi_sigma_hist: np.ndarray | None = None
        last_config = None

        for step, item in enumerate(items):
            selections = cell.decide_many(adjusteds)
            for g, loop in enumerate(loops):
                config = selections[g].config
                columns = cols[g]
                column = columns[step] if columns is not None else -1
                row = -1
                cap = 0.0
                if column >= 0:
                    view = loop.grid_view
                    memo_key = (id(view), id(config))
                    entry = row_memo.get(memo_key)
                    if entry is None:
                        engine = loop.engine
                        effective = engine.actuator.set_power_cap(
                            config.power_w
                        )
                        resolved = view.row_for(
                            config.model, effective, config.rung_cap
                        )
                        entry = (
                            resolved if resolved is not None else -1,
                            engine.machine.clamp_power(config.power_w),
                        )
                        row_memo[memo_key] = entry
                    row, cap = entry
                if row >= 0:
                    grid = loop.grid_view.grid
                    rows[g, step] = row
                    requested[g, step] = cap
                    proxy = proxies[g]
                    proxy.model_name = grid.configs[row].model.name
                    proxy.power_cap_w = cap
                    proxy.latency_s = grid.latency_s[row, column]
                    proxy.full_latency_s = grid.full_latency_s[row, column]
                    proxy.idle_power_w = grid.idle_power_w[row, column]
                    proxy.period_s = periods[g]
                    observed[g] = proxy
                else:
                    outcome = loop.engine.run(
                        model=config.model,
                        power_cap_w=config.power_w,
                        index=item.index,
                        deadline_s=deadlines[g],
                        period_s=periods[g],
                        work_factor=item.work_factor,
                        rung_cap=config.rung_cap,
                    )
                    fallbacks[g][step] = outcome
                    observed[g] = outcome
                last_config = config
            cell.observe_many(observed)
            snapshot = cell.xi_snapshot()
            if snapshot is not None:
                if xi_mean_hist is None:
                    xi_mean_hist = np.zeros((n, n_goals))
                    xi_sigma_hist = np.zeros((n, n_goals))
                # Row-copy: the cell may mutate (or rebind) its live
                # arrays on the next observe.
                xi_mean_hist[step] = snapshot[0]
                xi_sigma_hist[step] = snapshot[1]

        # The sequential path leaves the actuator at the last decision.
        if last_config is not None:
            loops[-1].engine.actuator.set_power_cap(last_config.power_w)

        item_indices = [item.index for item in items]
        results = []
        for g, loop in enumerate(loops):
            records = self._fill_records(
                loop=loop,
                base=bases[g],
                adjusted=adjusteds[g],
                period=periods[g],
                rows_g=rows[g],
                cols_g=cols[g],
                requested_g=requested[g],
                fallback_g=fallbacks[g],
                item_indices=item_indices,
                xi_mean_hist=xi_mean_hist,
                xi_sigma_hist=xi_sigma_hist,
                g=g,
                n=n,
            )
            results.append(
                RunResult(
                    scheduler_name=loop.scheduler.name,
                    goal=loop.goal,
                    records=records,
                )
            )
        LOCKSTEP_TELEMETRY.record_cell(cell)
        return results

    @staticmethod
    def _fill_records(
        loop: ServingLoop,
        base: Goal,
        adjusted: Goal,
        period: float,
        rows_g: np.ndarray,
        cols_g: "np.ndarray | None",
        requested_g: np.ndarray,
        fallback_g: "dict[int, InferenceOutcome]",
        item_indices: list[int],
        xi_mean_hist: "np.ndarray | None",
        xi_sigma_hist: "np.ndarray | None",
        g: int,
        n: int,
    ) -> list[ServedInput]:
        """One goal's records, goal-major from the grid columns.

        Grid-served steps are grouped by row and realised with the
        batch path's vectorized slices + direct ``__dict__`` fill (the
        parity suite pins the result against constructor-built
        sequential records field by field); engine-fallback steps reuse
        :meth:`ServingLoop._record` on their stored outcomes.  ξ per
        record comes from the per-step history snapshots, matching what
        the per-step path reads right after each ``observe_many``.
        """
        records: list[ServedInput | None] = [None] * n
        deadline = adjusted.deadline_s
        served = np.nonzero(rows_g >= 0)[0]
        if served.size:
            view = loop.grid_view
            grid = view.grid
            fill = object.__setattr__
            for row in np.unique(rows_g[served]).tolist():
                positions = served[rows_g[served] == row]
                columns = cols_g[positions]
                model = grid.configs[row].model
                model_name = model.name
                effective = float(grid.power_cap_w[row])
                power = float(grid.inference_power_w[row])
                met_row = grid.met_deadline[row, columns]
                quality_row = grid.quality[row, columns]
                energy_row = grid.energy_j[row, columns]
                latency = grid.latency_s[row, columns].tolist()
                full = grid.full_latency_s[row, columns].tolist()
                rungs = grid.completed_rungs[row, columns].tolist()
                inference_j = grid.inference_j[row, columns].tolist()
                idle_j = grid.idle_j[row, columns].tolist()
                idle_power = grid.idle_power_w[row, columns].tolist()
                env = grid.env_factor[columns].tolist()
                met = met_row.tolist()
                quality = quality_row.tolist()
                metric = model.task.quality_to_metric_list(quality)
                caps = requested_g[positions].tolist()

                latency_violation = np.logical_not(met_row).tolist()
                accuracy = base.quality_violated(quality_row)
                if isinstance(accuracy, np.ndarray):
                    accuracy_violation = accuracy.tolist()
                else:
                    accuracy_violation = [bool(accuracy)] * len(positions)
                budget = base.energy_violated(energy_row)
                if isinstance(budget, np.ndarray):
                    energy_violation = budget.tolist()
                else:
                    energy_violation = [bool(budget)] * len(positions)
                if xi_mean_hist is not None:
                    xi_means = xi_mean_hist[positions, g].tolist()
                    xi_sigmas = xi_sigma_hist[positions, g].tolist()
                else:
                    xi_means = xi_sigmas = None

                for j, position in enumerate(positions.tolist()):
                    energy = object.__new__(EnergyBreakdown)
                    fill(energy, "__dict__", {
                        "inference_j": inference_j[j],
                        "idle_j": idle_j[j],
                    })
                    outcome = object.__new__(InferenceOutcome)
                    fill(outcome, "__dict__", {
                        "index": item_indices[position],
                        "model_name": model_name,
                        "power_cap_w": caps[j],
                        "effective_cap_w": effective,
                        "latency_s": latency[j],
                        "full_latency_s": full[j],
                        "met_deadline": met[j],
                        "quality": quality[j],
                        "metric_value": metric[j],
                        "completed_rungs": rungs[j],
                        "energy": energy,
                        "inference_power_w": power,
                        "idle_power_w": idle_power[j],
                        "env_factor": env[j],
                        "deadline_s": deadline,
                        "period_s": period,
                    })
                    record = object.__new__(ServedInput)
                    fill(record, "__dict__", {
                        "outcome": outcome,
                        "goal": base,
                        "effective_deadline_s": deadline,
                        "latency_violation": latency_violation[j],
                        "accuracy_violation": accuracy_violation[j],
                        "energy_violation": energy_violation[j],
                        "xi_mean": (
                            xi_means[j] if xi_means is not None else 0.0
                        ),
                        "xi_sigma": (
                            xi_sigmas[j] if xi_sigmas is not None else 0.0
                        ),
                    })
                    records[position] = record
        for step, outcome in fallback_g.items():
            records[step] = loop._record(
                item_goal=base,
                adjusted=adjusted,
                outcome=outcome,
                xi_mean=(
                    float(xi_mean_hist[step, g])
                    if xi_mean_hist is not None
                    else 0.0
                ),
                xi_sigma=(
                    float(xi_sigma_hist[step, g])
                    if xi_sigma_hist is not None
                    else 0.0
                ),
            )
        return records
