"""The serving loop: one policy, one scenario, one constraint setting.

Implements the paper's deployment model: inputs arrive periodically;
before each input the policy picks a (DNN, power, rung) configuration;
the engine realises latency, quality, and energy; measurements feed
back to the policy.  The loop owns goal adjustment (workflow step 2):
requirement-trace overrides, shared sentence deadlines, and the
policy's declared overhead reservation.

Violation bookkeeping follows the paper:

* **latency** — the final answer landed after the (base) deadline;
* **accuracy** — in minimise-energy mode, the delivered quality fell
  below ``accuracy_min``;
* **energy** — in minimise-error mode, the period energy exceeded
  ``energy_budget_j``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.goals import Goal, GoalAdjuster
from repro.errors import ConfigurationError
from repro.models.inference import InferenceEngine
from repro.runtime.results import RunResult, ServedInput
from repro.runtime.scheduler import Scheduler
from repro.workloads.inputs import InputStream
from repro.workloads.traces import RequirementTrace

__all__ = ["ServingLoop"]


class ServingLoop:
    """Drives one scheduler over one engine and input stream.

    Parameters
    ----------
    engine:
        The inference engine (owns the environment realisation).
    stream:
        The input stream (owns work factors and grouping).
    scheduler:
        The policy under evaluation.
    goal:
        The base constraint setting.
    requirement_trace:
        Optional mid-run requirement changes.
    adjuster:
        Goal adjuster; a fresh one is built when omitted.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        stream: InputStream,
        scheduler: Scheduler,
        goal: Goal,
        requirement_trace: RequirementTrace | None = None,
        adjuster: GoalAdjuster | None = None,
    ) -> None:
        self.engine = engine
        self.stream = stream
        self.scheduler = scheduler
        self.goal = goal
        self.trace = requirement_trace or RequirementTrace()
        self.adjuster = adjuster if adjuster is not None else GoalAdjuster()

    # ------------------------------------------------------------------
    # Goal plumbing
    # ------------------------------------------------------------------
    def _base_goal_at(self, index: int) -> Goal:
        """The base goal with any requirement-trace override applied."""
        if self.trace.is_empty:
            return self.goal
        override = self.trace.active_at(index)
        goal = self.goal
        if override.deadline_s is not None:
            goal = goal.with_deadline(override.deadline_s)
        if override.accuracy_min is not None or override.energy_budget_j is not None:
            kwargs = {}
            if override.accuracy_min is not None:
                kwargs["accuracy_min"] = override.accuracy_min
            if override.energy_budget_j is not None:
                kwargs["energy_budget_j"] = override.energy_budget_j
            goal = replace(goal, **kwargs)
        return goal

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, n_inputs: int) -> RunResult:
        """Serve ``n_inputs`` inputs and aggregate the records."""
        if n_inputs < 1:
            raise ConfigurationError(f"need at least one input, got {n_inputs}")
        records: list[ServedInput] = []
        for index in range(n_inputs):
            item = self.stream.item(index)
            base_goal = self._base_goal_at(index)
            adjusted = self.adjuster.adjust(base_goal, item)

            config = self.scheduler.decide(item, adjusted)
            outcome = self.engine.run(
                model=config.model,
                power_cap_w=config.power_w,
                index=index,
                deadline_s=adjusted.deadline_s,
                period_s=base_goal.period,
                work_factor=item.work_factor,
                rung_cap=config.rung_cap,
            )
            self.scheduler.observe(outcome)
            self.adjuster.consume(item, outcome.latency_s)
            records.append(
                self._record(item_goal=base_goal, adjusted=adjusted, outcome=outcome)
            )
        return RunResult(
            scheduler_name=self.scheduler.name, goal=self.goal, records=records
        )

    def _record(self, item_goal: Goal, adjusted: Goal, outcome) -> ServedInput:
        """Build the per-input record with violation flags.

        Tolerances live in one place — :mod:`repro.core.goals` — shared
        with the oracles' feasibility masks, so "violated" means the
        same thing to the bookkeeping and to the perfect-knowledge
        baselines.
        """
        latency_violation = not outcome.met_deadline
        accuracy_violation = bool(item_goal.quality_violated(outcome.quality))
        energy_violation = bool(item_goal.energy_violated(outcome.energy_j))

        xi_mean, xi_sigma = 0.0, 0.0
        state = getattr(self.scheduler, "state", None)
        if state is not None:
            xi_mean, xi_sigma = state.xi_mean, state.xi_sigma

        return ServedInput(
            outcome=outcome,
            goal=item_goal,
            effective_deadline_s=adjusted.deadline_s,
            latency_violation=latency_violation,
            accuracy_violation=accuracy_violation,
            energy_violation=energy_violation,
            xi_mean=xi_mean,
            xi_sigma=xi_sigma,
        )
