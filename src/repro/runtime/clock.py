"""Clocks: the time authorities the decision kernel is driven by.

The kernel split (:mod:`repro.core.kernel`) removed all knowledge of
time from the decision logic; this module is where that knowledge now
lives.  Three time authorities share one tiny surface:

* :class:`SimulatedClock` — the batch harness's authority.  The
  closed-loop serving loops (:mod:`repro.runtime.loop`) advance it by
  each input's occupied period, which is how the paper's harness
  models a device that blocks until the period boundary.  It does not
  schedule callbacks; it is a pure odometer the loops tick.
* :class:`VirtualClock` — the serving front-end's deterministic
  authority.  A (time, seq, callback) heap: ``schedule`` posts an
  event, ``run`` drains the heap in (time, insertion) order, jumping
  time forward instead of sleeping.  Same seed ⇒ same event order ⇒
  bit-identical fleet runs, which is what the fleet tests and the
  ``repro fleet`` CLI rely on.
* :class:`WallClock` — the live adapter: the same ``schedule``/``now``
  surface mapped onto an :mod:`asyncio` event loop (``call_later``),
  for running the fleet against real time.  Nothing in the test suite
  depends on it; it exists so the virtual-time front-end code runs
  unmodified against a real event loop.

Determinism note: ``VirtualClock`` breaks simultaneous events by
insertion sequence, never by callback identity, so Python hash
randomisation cannot reorder a run.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Protocol, runtime_checkable

from repro.errors import ConfigurationError

__all__ = [
    "Clock",
    "SchedulingClock",
    "SimulatedClock",
    "VirtualClock",
    "WallClock",
    "ScheduledEvent",
]


@runtime_checkable
class Clock(Protocol):
    """The minimal time authority: a monotonically advancing ``now``."""

    def now(self) -> float:
        """Current time in seconds (origin is authority-defined)."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class SchedulingClock(Clock, Protocol):
    """A clock that can also run callbacks at future instants."""

    def schedule(self, delay_s: float, callback: Callable[[], None]):
        """Run ``callback`` ``delay_s`` seconds from ``now``."""
        ...  # pragma: no cover - protocol


class SimulatedClock:
    """The batch harness's odometer: time advances by explicit ticks.

    The closed-loop serving loops tick it once per served input with
    the input's occupied period (``max(latency, period)`` — the
    blocking-device model), so ``now`` is the simulated wall time at
    the end of the last period and ``ticks`` counts served inputs.
    Pure bookkeeping: ticking never runs callbacks, and the loops'
    decisions never read it — that is the whole point of the split.
    """

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = start_s
        self.ticks = 0

    def now(self) -> float:
        return self._now

    def tick(self, elapsed_s: float) -> float:
        """Advance by one input's occupied period; returns new ``now``."""
        if elapsed_s < 0:
            raise ConfigurationError(
                f"time cannot run backwards (tick {elapsed_s})"
            )
        self._now += elapsed_s
        self.ticks += 1
        return self._now

    def tick_many(self, total_elapsed_s: float, n: int) -> float:
        """Advance by ``n`` inputs' combined occupied time at once.

        The batch fast paths realise whole runs in one vectorized pass;
        this keeps the odometer equivalent to ``n`` individual ticks
        without a per-input Python loop.
        """
        if total_elapsed_s < 0 or n < 0:
            raise ConfigurationError(
                f"time cannot run backwards (tick {total_elapsed_s} x{n})"
            )
        self._now += total_elapsed_s
        self.ticks += n
        return self._now


class ScheduledEvent:
    """Handle for a :class:`VirtualClock` callback; supports cancel."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int, callback) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class VirtualClock:
    """Deterministic event timeline: sleep by jumping, not waiting.

    ``schedule`` posts callbacks onto a heap ordered by (fire time,
    insertion sequence); ``run`` pops them in order, setting ``now`` to
    each event's fire time before invoking it.  Callbacks may schedule
    further events (including at zero delay).  A whole simulated hour
    of fleet traffic runs in however long the Python work takes.
    """

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = start_s
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()

    def now(self) -> float:
        return self._now

    def schedule(
        self, delay_s: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Post ``callback`` at ``now + delay_s``; returns its handle."""
        if delay_s < 0:
            raise ConfigurationError(
                f"cannot schedule into the past (delay {delay_s})"
            )
        event = ScheduledEvent(self._now + delay_s, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    @property
    def pending(self) -> int:
        """Scheduled-but-not-fired event count (cancelled included)."""
        return len(self._heap)

    def run(self, until_s: float | None = None) -> int:
        """Drain events in timeline order; returns the number fired.

        With ``until_s`` the timeline stops at that instant: events at
        ``when <= until_s`` fire, later ones stay pending, and ``now``
        lands exactly on ``until_s`` — so metrics windows close at the
        requested duration regardless of event spacing.
        """
        fired = 0
        while self._heap:
            if until_s is not None and self._heap[0].when > until_s:
                break
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.when
            event.callback()
            fired += 1
        if until_s is not None and self._now < until_s:
            self._now = until_s
        return fired


class WallClock:
    """The same scheduling surface on a live :mod:`asyncio` loop.

    ``schedule`` maps to ``loop.call_later`` and ``now`` to the loop's
    monotonic time *relative to this clock's construction instant*, so
    a wall run shares the virtual clocks' origin-at-zero convention —
    arrival timelines (which start near zero) and response-time
    arithmetic work unchanged.  The caller owns the loop's lifecycle
    (the front-end never calls ``run`` on this clock — the event loop
    is already running).
    """

    def __init__(self, loop=None) -> None:
        if loop is None:
            import asyncio

            loop = asyncio.get_event_loop()
        self._loop = loop
        self._origin = loop.time()

    def now(self) -> float:
        return self._loop.time() - self._origin

    def schedule(self, delay_s: float, callback: Callable[[], None]):
        if delay_s < 0:
            raise ConfigurationError(
                f"cannot schedule into the past (delay {delay_s})"
            )
        return self._loop.call_later(delay_s, callback)
