"""Zero-copy cross-process store of realised outcome grids.

A sweep's dominant redundant cost is grid realisation: every pool
worker privately rebuilds and caches the (configuration × input)
outcome grids its cells need, so a plan whose cells share timings pays
O(workers) realisations per grid plus O(workers) copies of every
grid's arrays.  This module removes both: the **first** worker to need
a grid realises it once and publishes its arrays into a
``multiprocessing.shared_memory`` segment; every other worker (and the
driver) attaches read-only zero-copy views instead of realising or
copying anything.

Publishing is zero-copy end to end when the caller knows the grid's
dimensions up front: the segment is sized and created *before*
realisation (:func:`~repro.models.inference.shared_grid_layout`) and
the batch evaluation writes its output planes directly into it
(:func:`~repro.models.inference.buffer_grid_allocator`), so no private
grid is ever built and then copied.  Layout and adoption live in
:mod:`repro.models.inference`
(:func:`~repro.models.inference.shared_grid_payload` /
:func:`~repro.models.inference.adopt_shared_grid`); this module owns
the cross-process choreography:

* a :class:`SharedGridStore` is created by the driver and owns segment
  lifetime — close/:keyword:`with` unlinks every published segment
  (worker processes never unlink).  The store makes the process tree's
  *shared* resource tracker exist before any worker can fork, so every
  create/attach registration lands in that one tracker's set — where
  duplicates collapse — and the single ``unlink()`` at close retires
  the segment's registration exactly once.  (Per-process compensating
  ``unregister`` calls would race: two processes' balanced pairs
  interleave through one set and the second unregister throws.)
  A crashed driver leaves cleanup to that tracker's exit sweep;
* the cross-process entry map is itself a shared-memory segment — a
  pickled dict guarded by a ``multiprocessing`` lock
  (:class:`_ShmDict`), not a ``Manager`` dict.  A manager proxies
  every operation through a separate server process, so each lookup
  costs a scheduler round-trip (~hundreds of microseconds, and a whole
  timeslice when cores are scarce); the registry keeps lookups
  in-process at lock-acquire cost, which is what lets the store win
  even on a single-core host;
* its :class:`GridStoreClient` crosses the pool boundary (by fork
  inheritance or as a process argument) and exposes one operation,
  :meth:`GridStoreClient.get_or_realize`: look the grid up, else claim
  it (a *pending* marker under the store lock), realise, publish;
  losers of the claim race poll-wait for the marker to turn *ready*
  and attach.  Every failure mode — a full ``/dev/shm``, a vanished
  segment, a full registry, a publisher that died mid-realise
  (timeout) — degrades to realising locally without publishing, so the
  store is always an optimisation, never a correctness dependency.

Attached grids are plain :class:`~repro.models.inference.BatchOutcomeGrid`
objects whose arrays are explicitly read-only (``writeable=False``): a
stray in-place mutation in one worker raises instead of silently
corrupting every sibling's view of the segment.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import struct
import time
from multiprocessing import resource_tracker, shared_memory

from repro.models.inference import (
    adopt_shared_grid,
    buffer_grid_allocator,
    shared_grid_layout,
    shared_grid_payload,
    write_shared_grid,
)

__all__ = ["SharedGridStore", "GridStoreClient"]

#: Entry states in the store's shared map.
_PENDING = "pending"
_READY = "ready"
_FAILED = "failed"

#: How long an attacher waits on a *pending* grid before giving up and
#: realising locally (a realisation takes milliseconds; this bound only
#: matters when the publishing worker died mid-realise).
_WAIT_TIMEOUT_S = 60.0
#: Poll interval while waiting on a pending entry; sleeping yields the
#: core to the realising worker, so waiting is cheap even single-core.
_POLL_INTERVAL_S = 0.002

#: Fixed size of the registry segment.  Pages are allocated on first
#: touch, so the virtual reservation costs nothing; entries are a few
#: kilobytes each (digest key + field table), so this holds thousands
#: of distinct grids — far beyond any one sweep's timing count.
_REGISTRY_CAPACITY = 16 * 1024 * 1024

#: Reserved registry key holding the free-segment pool
#: (``{nbytes: [segment names]}``).  Grid keys are hex digests, so a
#: NUL-prefixed name can never collide with one.
_POOL_KEY = "\x00segment-pool"

#: Page granularity used when prefaulting pooled segments.
_PAGE_SIZE = 4096


def _digest(key) -> str:
    """Collapse an arbitrary store key into a short string.

    Store keys carry a structural space fingerprint — one row per
    candidate configuration, kilobytes once pickled — and every
    registry operation re-pickles the whole entry map.  Keys built from
    plain scalars (strings, ints, floats, None, tuples and dataclasses
    of them) have deterministic ``repr`` across processes, so the
    digest identifies the same grid everywhere at a fraction of the
    payload cost.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class _ShmDict:
    """A pickled dict inside a fixed shared-memory segment.

    The drop-in replacement for a ``Manager().dict()``: every operation
    acquires the store lock, unpickles the payload, and (for writes)
    re-pickles it.  That is microseconds of in-process work for the
    small entry maps a sweep builds, where every manager-proxy
    operation costs a round-trip through the manager *process* — a
    scheduler timeslice each when cores are scarce.  The lock is
    re-entrant so callers can compose operations (claim-if-absent)
    under one critical section.
    """

    def __init__(self, name: str, lock) -> None:
        self._name = name
        self._lock = lock
        self._shm = None

    @classmethod
    def create(cls, lock, capacity: int = _REGISTRY_CAPACITY) -> "_ShmDict":
        shm = shared_memory.SharedMemory(create=True, size=capacity)
        registry = cls(shm.name, lock)
        registry._shm = shm
        registry._write({})
        return registry

    # -- segment plumbing ----------------------------------------------
    def _segment(self) -> shared_memory.SharedMemory:
        if self._shm is None:
            # The attach registration collapses into the shared
            # tracker's set alongside the creator's.
            self._shm = shared_memory.SharedMemory(name=self._name)
        return self._shm

    def _read(self) -> dict:
        buf = self._segment().buf
        (length,) = struct.unpack_from("<Q", buf, 0)
        if length == 0:
            return {}
        return pickle.loads(bytes(buf[8:8 + length]))

    def _write(self, entries: dict) -> None:
        payload = pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
        buf = self._segment().buf
        if 8 + len(payload) > len(buf):
            raise ValueError(
                f"grid registry full: {len(payload)} bytes of entries "
                f"exceed the {len(buf)}-byte segment"
            )
        buf[8:8 + len(payload)] = payload
        struct.pack_into("<Q", buf, 0, len(payload))

    # -- the dict surface the client uses ------------------------------
    def get(self, key, default=None):
        with self._lock:
            return self._read().get(key, default)

    def __setitem__(self, key, value) -> None:
        with self._lock:
            entries = self._read()
            entries[key] = value
            self._write(entries)

    def values(self) -> list:
        with self._lock:
            return list(self._read().values())

    def items(self) -> list:
        with self._lock:
            return list(self._read().items())

    def clear(self) -> None:
        with self._lock:
            self._write({})

    def unlink(self) -> None:
        """Retire the registry segment (driver close only)."""
        shm = self._segment()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        shm.close()
        self._shm = None

    # The mapped segment does not survive pickling; workers re-attach
    # by name on first use.  The lock pickles by process inheritance
    # (fork, or multiprocessing's own pickler for process arguments),
    # which is exactly how the client crosses the pool boundary.
    def __getstate__(self) -> dict:
        return {"name": self._name, "lock": self._lock}

    def __setstate__(self, state: dict) -> None:
        self._name = state["name"]
        self._lock = state["lock"]
        self._shm = None


class GridStoreClient:
    """Worker-side handle onto one :class:`SharedGridStore`.

    Holds only the registry (a segment name plus the store lock), so it
    crosses the pool boundary like any multiprocessing primitive — by
    fork inheritance or as a process argument — and every copy talks to
    the same store.
    """

    def __init__(self, entries, lock) -> None:
        self._entries = entries
        self._lock = lock

    # ------------------------------------------------------------------
    # The one worker-facing operation
    # ------------------------------------------------------------------
    def get_or_realize(self, key, configs, realize, n_inputs=None):
        """The grid for ``key``: attached shared, else realised.

        ``configs`` is the configuration tuple the adopted grid's rows
        align with (the caller's memoised candidate space — row order
        is the deterministic space enumeration, identical in every
        process); ``realize`` is a callable producing the grid locally.
        Exactly one caller per key realises and publishes; everyone
        else attaches.  When ``n_inputs`` is given and ``realize``
        accepts an ``allocator`` keyword, the winner sizes the segment
        up front (:func:`~repro.models.inference.shared_grid_layout`)
        and realises *into* it, skipping the realise-then-copy pass;
        otherwise the grid is realised privately and copied in.  Any
        store failure falls back to ``realize()`` without publishing.
        """
        key = _digest(key)
        try:
            entry = self._entries.get(key)
        except Exception:
            return realize()
        if entry is None:
            claimed = False
            try:
                with self._lock:
                    if self._entries.get(key) is None:
                        self._entries[key] = (_PENDING, None, None)
                        claimed = True
            except Exception:
                return realize()
            if claimed:
                if n_inputs is not None:
                    return self._publish_into(key, configs, realize, n_inputs)
                grid = realize()
                shared = self._publish(key, grid, configs)
                return shared if shared is not None else grid
            entry = self._entries.get(key)
        attached = self._wait_attach(key, configs, entry)
        return attached if attached is not None else realize()

    # ------------------------------------------------------------------
    # Publisher side
    # ------------------------------------------------------------------
    def _set_entry(self, key, value) -> bool:
        """Best-effort registry write (False when the registry is gone)."""
        try:
            self._entries[key] = value
            return True
        except Exception:
            return False

    def _pop_pool(self, nbytes):
        """Claim a preallocated segment name of exactly ``nbytes``."""
        try:
            with self._lock:
                pool = self._entries.get(_POOL_KEY)
                names = (pool or {}).get(nbytes)
                if not names:
                    return None
                name = names.pop()
                self._entries[_POOL_KEY] = pool
                return name
        except Exception:
            return None

    def _segment_for(self, nbytes):
        """A segment of ``nbytes``: pooled (already prefaulted) else fresh.

        Popping a :meth:`SharedGridStore.preallocate`-d segment skips
        both the create syscalls and — because the driver touched every
        page at setup — the first-touch page allocation the kernel
        would otherwise charge to the realisation writes, the dominant
        per-grid publish overhead.
        """
        name = self._pop_pool(nbytes)
        if name is not None:
            try:
                return shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError):
                pass
        return shared_memory.SharedMemory(create=True, size=max(1, nbytes))

    def _publish_into(self, key, configs, realize, n_inputs):
        """Realise a grid directly inside a fresh shared segment.

        The field layout is a static function of the grid's dimensions,
        so the segment is created *before* realisation and the batch
        evaluation writes its output planes straight into it via a
        :func:`~repro.models.inference.buffer_grid_allocator` — no
        private realisation, no 30-megabyte copy.  Returns the adopted
        (read-only) grid; any failure marks the entry *failed*,
        retires the segment, and realises locally instead.
        """
        try:
            fields, nbytes = shared_grid_layout(len(configs), n_inputs)
            shm = self._segment_for(nbytes)
        except Exception:
            self._set_entry(key, (_FAILED, None, None))
            return realize()
        try:
            allocator = buffer_grid_allocator(fields, shm.buf)
            grid = realize(allocator=allocator)
            meta = {
                "deadline_s": grid.deadline_s,
                "period_s": grid.period_s,
                "n_configs": len(configs),
                "n_inputs": n_inputs,
                "fields": fields,
                "nbytes": nbytes,
            }
            adopted = adopt_shared_grid(tuple(configs), meta, shm.buf, owner=shm)
        except Exception:
            self._set_entry(key, (_FAILED, None, None))
            try:
                shm.unlink()  # unlink() also drops the tracker claim
            except FileNotFoundError:  # pragma: no cover
                pass
            shm.close()
            return realize()
        # Publish *after* realisation completes: a reader only sees
        # "ready" once the segment is fully written (the registry lock
        # orders the two).  The create-registration stays — the
        # driver's close() retires it (see the module docstring).
        if not self._set_entry(key, (_READY, shm.name, meta)):
            # Registry gone mid-publish: retire the name now (close()
            # will never see the entry); the adopted mapping stays
            # valid for this process.
            try:
                shm.unlink()
            except Exception:  # pragma: no cover
                pass
        return adopted

    def _publish(self, key, grid, configs):
        """Copy a freshly realised grid into a new shared segment.

        Returns the adopted (read-only, zero-copy) grid over the
        segment — the publisher serves from the shared arrays too — or
        None when the segment cannot be created (the entry turns
        *failed* so waiters stop polling and realise locally).
        """
        try:
            meta, arrays = shared_grid_payload(grid)
            shm = self._segment_for(meta["nbytes"])
        except Exception:
            self._set_entry(key, (_FAILED, None, None))
            return None
        try:
            write_shared_grid(meta, arrays, shm.buf)
            adopted = adopt_shared_grid(
                tuple(configs), meta, shm.buf, owner=shm
            )
        except Exception:
            self._set_entry(key, (_FAILED, None, None))
            try:
                shm.unlink()  # unlink() also drops the tracker claim
            except FileNotFoundError:  # pragma: no cover
                pass
            shm.close()
            return None
        # Publish *after* the copy: a reader only sees "ready" once the
        # segment is fully written (the registry lock orders the two).
        # The create-registration stays: it lands in the process tree's
        # shared tracker set, where the driver's close() retires it
        # with the one unlink (see the module docstring).
        if not self._set_entry(key, (_READY, shm.name, meta)):
            try:
                shm.unlink()
            except Exception:  # pragma: no cover
                pass
        return adopted

    # ------------------------------------------------------------------
    # Attacher side
    # ------------------------------------------------------------------
    def _attach(self, name, meta, configs):
        try:
            # The attach-registration collapses into the shared
            # tracker's set alongside the creator's (see module
            # docstring) — no compensating unregister.
            shm = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return None
        try:
            return adopt_shared_grid(tuple(configs), meta, shm.buf, owner=shm)
        except Exception:
            shm.close()
            return None

    def _wait_attach(self, key, configs, entry):
        deadline = time.monotonic() + _WAIT_TIMEOUT_S
        while True:
            if entry is None:
                return None
            state, name, meta = entry
            if state == _READY:
                return self._attach(name, meta, configs)
            if state == _FAILED:
                return None
            if time.monotonic() >= deadline:
                return None
            time.sleep(_POLL_INTERVAL_S)
            try:
                entry = self._entries.get(key)
            except Exception:
                return None

    # ------------------------------------------------------------------
    # Introspection (benches and tests)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Published-segment counters: grids, shared bytes, failures."""
        grids = 0
        nbytes = 0
        failed = 0
        pending = 0
        pooled = 0
        for key, value in self._entries.items():
            if key == _POOL_KEY:
                pooled = sum(len(names) for names in value.values())
                continue
            state, _name, meta = value
            if state == _READY:
                grids += 1
                nbytes += meta["nbytes"]
            elif state == _FAILED:
                failed += 1
            else:
                pending += 1
        return {
            "grids": grids,
            "nbytes": nbytes,
            "failed": failed,
            "pending": pending,
            "pooled": pooled,
        }


class SharedGridStore:
    """Driver-side owner of a sweep's shared grid segments.

    Create one per sweep (or bench A/B arm), hand :meth:`client` to the
    executor/pool, and :meth:`close` — or use it as a context manager —
    when the sweep is done.  Close unlinks every published segment;
    grids already adopted by live objects stay readable (their mappings
    pin the memory) but no new attach can see them.
    """

    def __init__(self) -> None:
        # The whole process tree must share ONE resource tracker (the
        # register/unregister discipline in the module docstring relies
        # on a single shared set), so make it exist before any pool can
        # fork.
        resource_tracker.ensure_running()
        # Re-entrant: the claim path composes get + set under one
        # critical section while each _ShmDict operation also locks.
        self._lock = multiprocessing.RLock()
        self._entries = _ShmDict.create(self._lock)
        self._client = GridStoreClient(self._entries, self._lock)
        self._pool_names: list[str] = []
        self._closed = False

    def preallocate(self, nbytes: int, count: int) -> None:
        """Create ``count`` prefaulted segments of ``nbytes`` for publishers.

        Per-grid publish overhead is dominated not by the store's
        bookkeeping but by the kernel: segment creation syscalls plus
        first-touch page allocation of tens of megabytes, charged to
        the realisation writes.  A sweep knows its grid dimensions up
        front (:func:`~repro.models.inference.shared_grid_layout` sizes
        a segment from ``(n_configs, n_inputs)`` alone), so the driver
        can pay that cost once at startup: publishers pop a ready,
        already-faulted segment instead of creating one per grid in
        steady state.  Call before forking workers; unused segments are
        unlinked by :meth:`close`.
        """
        names = []
        for _ in range(count):
            shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
            buf = shm.buf
            for offset in range(0, len(buf), _PAGE_SIZE):
                buf[offset] = 0
            names.append(shm.name)
            shm.close()
        with self._lock:
            pool = self._entries.get(_POOL_KEY) or {}
            pool.setdefault(nbytes, []).extend(names)
            self._entries[_POOL_KEY] = pool
        self._pool_names.extend(names)

    def client(self) -> GridStoreClient:
        """The handle pool workers use (fork/process-argument safe)."""
        return self._client

    def stats(self) -> dict:
        """Published-segment counters (see :meth:`GridStoreClient.stats`)."""
        return self._client.stats()

    def close(self) -> None:
        """Unlink every published segment, then the registry itself."""
        if self._closed:
            return
        self._closed = True
        try:
            entries = [
                value
                for key, value in self._entries.items()
                if key != _POOL_KEY
            ]
            self._entries.clear()
        except Exception:  # pragma: no cover - registry already gone
            entries = []
        for state, name, _meta in entries:
            if state != _READY:
                continue
            try:
                shm = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError):
                continue
            # The one unregister of the segment's lifetime: unlink()
            # retires the single collapsed entry every create/attach
            # registration shares in the tracker's set.
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            shm.close()
        # Preallocated segments a publisher claimed were retired above
        # through their READY entries; the rest are retired here by
        # name (a claimed name just comes back FileNotFound).
        for name in self._pool_names:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError):
                continue
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            shm.close()
        try:
            self._entries.unlink()
        except Exception:  # pragma: no cover - registry already gone
            pass

    def __enter__(self) -> "SharedGridStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
