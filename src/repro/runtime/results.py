"""Per-input records and run-level aggregation.

The paper's violation accounting (Table 4's superscripts): a constraint
*setting* counts as violated when a scheme breaks a constraint on more
than 10% of that setting's inputs; violated settings are excluded from
the energy/error averages.  :class:`RunResult` implements the per-run
half of that (violation fraction and means); the experiment drivers
apply the 10% rule across settings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.goals import Goal, ObjectiveKind
from repro.errors import SimulationError
from repro.models.inference import InferenceOutcome

__all__ = ["ServedInput", "RunArrays", "RunResult", "VIOLATION_SETTING_THRESHOLD"]

#: A setting is "violated" when more than this fraction of its inputs
#: break a constraint (the paper's 10% rule).
VIOLATION_SETTING_THRESHOLD = 0.10


@dataclass(frozen=True)
class ServedInput:
    """One input's full story: goal, configuration, and outcome.

    Attributes
    ----------
    outcome:
        The engine's measurement record.
    goal:
        The *base* goal in force for this input (before group/overhead
        adjustment).
    effective_deadline_s:
        The adjusted deadline actually enforced.
    latency_violation / accuracy_violation / energy_violation:
        Constraint checks against the base goal.
    xi_mean / xi_sigma:
        The scheduler's slowdown belief when it decided (0/0 for
        feedback-free policies) — Figure 9's trace material.
    """

    outcome: InferenceOutcome
    goal: Goal
    effective_deadline_s: float
    latency_violation: bool
    accuracy_violation: bool
    energy_violation: bool
    xi_mean: float = 0.0
    xi_sigma: float = 0.0

    @property
    def violated(self) -> bool:
        """Whether any applicable constraint broke on this input."""
        return (
            self.latency_violation
            or self.accuracy_violation
            or self.energy_violation
        )


@dataclass(frozen=True)
class RunArrays:
    """Vectorized per-input series of one run, aligned with ``records``.

    The batch fast path's native output: every element equals the
    corresponding record field exactly (both are sliced from the same
    engine/grid rows), so aggregates computed here are bit-identical
    to the record walk — pinned by ``tests/test_sweep_parity.py``.
    """

    latency_s: np.ndarray
    quality: np.ndarray
    energy_j: np.ndarray
    metric_value: np.ndarray
    violated: np.ndarray
    latency_violation: np.ndarray


class RunResult:
    """Aggregates one policy's run over one constraint setting.

    ``records`` may be deferred: the batch fast path constructs the
    result from its vectorized :class:`RunArrays` plus a
    ``materialize`` thunk, and the per-input :class:`ServedInput`
    objects are only assembled on first ``records`` access.  Aggregate
    properties read the arrays when present, so summary-only consumers
    (the sweep driver's streaming aggregation) never pay the O(inputs)
    record build.
    """

    def __init__(
        self,
        scheduler_name: str,
        goal: Goal,
        records: list[ServedInput] | None = None,
        *,
        arrays: "RunArrays | None" = None,
        materialize=None,
    ) -> None:
        self.scheduler_name = scheduler_name
        self.goal = goal
        self.arrays = arrays
        self._records = records
        self._materialize = materialize
        if records is None:
            if materialize is None or arrays is None:
                raise SimulationError(
                    "a deferred run needs both arrays and a materializer"
                )
            if len(arrays.latency_s) == 0:
                raise SimulationError("a run must serve at least one input")
        elif not records:
            raise SimulationError("a run must serve at least one input")

    @property
    def records(self) -> list[ServedInput]:
        """Per-input records, assembled on first access when deferred."""
        if self._records is None:
            self._records = self._materialize()
            self._materialize = None
        return self._records

    def __eq__(self, other):
        # The old dataclass semantics: equal on (name, goal, records).
        # Arrays are derived data and deferral is an implementation
        # detail, so comparison materializes.
        if other.__class__ is not self.__class__:
            return NotImplemented
        return (
            self.scheduler_name == other.scheduler_name
            and self.goal == other.goal
            and self.records == other.records
        )

    def __repr__(self) -> str:
        return (
            f"RunResult(scheduler_name={self.scheduler_name!r}, "
            f"goal={self.goal!r}, n_inputs={self.n_inputs})"
        )

    def __getstate__(self):
        # Materialize before pickling: the thunk is a local closure
        # (unpicklable) and the receiver loses nothing — deferral only
        # saves work inside the serving process.
        self.records
        state = dict(self.__dict__)
        state["_materialize"] = None
        return state

    # ------------------------------------------------------------------
    # Means
    # ------------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        """Number of inputs served."""
        if self.arrays is not None:
            return len(self.arrays.latency_s)
        return len(self.records)

    @property
    def mean_energy_j(self) -> float:
        """Mean whole-period energy per input."""
        if self.arrays is not None:
            return float(np.mean(self.arrays.energy_j))
        return float(np.mean([r.outcome.energy_j for r in self.records]))

    @property
    def mean_quality(self) -> float:
        """Mean delivered quality per input."""
        if self.arrays is not None:
            return float(np.mean(self.arrays.quality))
        return float(np.mean([r.outcome.quality for r in self.records]))

    @property
    def mean_error(self) -> float:
        """Mean delivered error (1 - quality)."""
        return 1.0 - self.mean_quality

    @property
    def mean_metric(self) -> float:
        """Mean of the task's reported metric (e.g. perplexity)."""
        if self.arrays is not None:
            return float(np.mean(self.arrays.metric_value))
        return float(np.mean([r.outcome.metric_value for r in self.records]))

    @property
    def mean_latency_s(self) -> float:
        """Mean inference latency per input."""
        if self.arrays is not None:
            return float(np.mean(self.arrays.latency_s))
        return float(np.mean([r.outcome.latency_s for r in self.records]))

    # ------------------------------------------------------------------
    # Violations
    # ------------------------------------------------------------------
    @property
    def violation_fraction(self) -> float:
        """Fraction of inputs that broke any applicable constraint."""
        if self.arrays is not None:
            return float(np.mean(self.arrays.violated))
        return float(np.mean([r.violated for r in self.records]))

    @property
    def setting_violated(self) -> bool:
        """The paper's 10% rule for this constraint setting."""
        return self.violation_fraction > VIOLATION_SETTING_THRESHOLD

    @property
    def deadline_miss_fraction(self) -> float:
        """Fraction of inputs whose final answer missed the deadline."""
        if self.arrays is not None:
            return float(np.mean(self.arrays.latency_violation))
        return float(np.mean([r.latency_violation for r in self.records]))

    # ------------------------------------------------------------------
    # Objective value
    # ------------------------------------------------------------------
    @property
    def objective_value(self) -> float:
        """The quantity the goal optimises (energy or error)."""
        if self.goal.objective is ObjectiveKind.MINIMIZE_ENERGY:
            return self.mean_energy_j
        return self.mean_error

    def describe(self) -> str:
        """Human-readable summary line."""
        return (
            f"{self.scheduler_name}: {self.n_inputs} inputs, "
            f"energy={self.mean_energy_j:.3f}J, quality={self.mean_quality:.4f}, "
            f"violations={self.violation_fraction * 100:.1f}%"
        )

    # ------------------------------------------------------------------
    # Trace extraction (Figure 9 material)
    # ------------------------------------------------------------------
    def series(self, field: str) -> list[float]:
        """A per-input series of one outcome attribute.

        ``field`` may be any numeric attribute of
        :class:`repro.models.inference.InferenceOutcome` (for example
        ``"latency_s"``, ``"quality"``, ``"power_cap_w"``) or
        ``"xi_mean"`` / ``"xi_sigma"`` from the scheduler belief.
        """
        if field in ("xi_mean", "xi_sigma"):
            return [getattr(r, field) for r in self.records]
        return [float(getattr(r.outcome, field)) for r in self.records]
