"""Per-input records and run-level aggregation.

The paper's violation accounting (Table 4's superscripts): a constraint
*setting* counts as violated when a scheme breaks a constraint on more
than 10% of that setting's inputs; violated settings are excluded from
the energy/error averages.  :class:`RunResult` implements the per-run
half of that (violation fraction and means); the experiment drivers
apply the 10% rule across settings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.goals import Goal, ObjectiveKind
from repro.errors import SimulationError
from repro.models.inference import InferenceOutcome

__all__ = ["ServedInput", "RunResult", "VIOLATION_SETTING_THRESHOLD"]

#: A setting is "violated" when more than this fraction of its inputs
#: break a constraint (the paper's 10% rule).
VIOLATION_SETTING_THRESHOLD = 0.10


@dataclass(frozen=True)
class ServedInput:
    """One input's full story: goal, configuration, and outcome.

    Attributes
    ----------
    outcome:
        The engine's measurement record.
    goal:
        The *base* goal in force for this input (before group/overhead
        adjustment).
    effective_deadline_s:
        The adjusted deadline actually enforced.
    latency_violation / accuracy_violation / energy_violation:
        Constraint checks against the base goal.
    xi_mean / xi_sigma:
        The scheduler's slowdown belief when it decided (0/0 for
        feedback-free policies) — Figure 9's trace material.
    """

    outcome: InferenceOutcome
    goal: Goal
    effective_deadline_s: float
    latency_violation: bool
    accuracy_violation: bool
    energy_violation: bool
    xi_mean: float = 0.0
    xi_sigma: float = 0.0

    @property
    def violated(self) -> bool:
        """Whether any applicable constraint broke on this input."""
        return (
            self.latency_violation
            or self.accuracy_violation
            or self.energy_violation
        )


@dataclass
class RunResult:
    """Aggregates one policy's run over one constraint setting."""

    scheduler_name: str
    goal: Goal
    records: list[ServedInput]

    def __post_init__(self) -> None:
        if not self.records:
            raise SimulationError("a run must serve at least one input")

    # ------------------------------------------------------------------
    # Means
    # ------------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        """Number of inputs served."""
        return len(self.records)

    @property
    def mean_energy_j(self) -> float:
        """Mean whole-period energy per input."""
        return float(np.mean([r.outcome.energy_j for r in self.records]))

    @property
    def mean_quality(self) -> float:
        """Mean delivered quality per input."""
        return float(np.mean([r.outcome.quality for r in self.records]))

    @property
    def mean_error(self) -> float:
        """Mean delivered error (1 - quality)."""
        return 1.0 - self.mean_quality

    @property
    def mean_metric(self) -> float:
        """Mean of the task's reported metric (e.g. perplexity)."""
        return float(np.mean([r.outcome.metric_value for r in self.records]))

    @property
    def mean_latency_s(self) -> float:
        """Mean inference latency per input."""
        return float(np.mean([r.outcome.latency_s for r in self.records]))

    # ------------------------------------------------------------------
    # Violations
    # ------------------------------------------------------------------
    @property
    def violation_fraction(self) -> float:
        """Fraction of inputs that broke any applicable constraint."""
        return float(np.mean([r.violated for r in self.records]))

    @property
    def setting_violated(self) -> bool:
        """The paper's 10% rule for this constraint setting."""
        return self.violation_fraction > VIOLATION_SETTING_THRESHOLD

    @property
    def deadline_miss_fraction(self) -> float:
        """Fraction of inputs whose final answer missed the deadline."""
        return float(np.mean([r.latency_violation for r in self.records]))

    # ------------------------------------------------------------------
    # Objective value
    # ------------------------------------------------------------------
    @property
    def objective_value(self) -> float:
        """The quantity the goal optimises (energy or error)."""
        if self.goal.objective is ObjectiveKind.MINIMIZE_ENERGY:
            return self.mean_energy_j
        return self.mean_error

    def describe(self) -> str:
        """Human-readable summary line."""
        return (
            f"{self.scheduler_name}: {self.n_inputs} inputs, "
            f"energy={self.mean_energy_j:.3f}J, quality={self.mean_quality:.4f}, "
            f"violations={self.violation_fraction * 100:.1f}%"
        )

    # ------------------------------------------------------------------
    # Trace extraction (Figure 9 material)
    # ------------------------------------------------------------------
    def series(self, field: str) -> list[float]:
        """A per-input series of one outcome attribute.

        ``field`` may be any numeric attribute of
        :class:`repro.models.inference.InferenceOutcome` (for example
        ``"latency_s"``, ``"quality"``, ``"power_cap_w"``) or
        ``"xi_mean"`` / ``"xi_sigma"`` from the scheduler belief.
        """
        if field in ("xi_mean", "xi_sigma"):
            return [getattr(r, field) for r in self.records]
        return [float(getattr(r.outcome, field)) for r in self.records]
