"""The sweep engine: declarative million-cell (scenario × goal) sweeps.

The experiment drivers evaluate one Table-4 cell at a time and hold
every run's full per-input record list in the driver.  This module is
the production-scale front: a **declarative sweep spec** (platforms ×
tasks × envs × seeds × the constraint grid × schemes) compiles into
the executor's existing :class:`~repro.runtime.executor.CellSpec`
plan, executes serially or across a process pool, and scales along
three axes the drivers do not:

* **zero-copy grids** — with a
  :class:`~repro.runtime.grid_store.SharedGridStore` (the default for
  pooled sweeps), each (scenario, timing) outcome grid is realised
  once per *sweep* and published via ``multiprocessing.shared_memory``;
  workers attach read-only views instead of re-realising per process;
* **streaming aggregation** — workers return compact per-cell
  :class:`CellSummary` rows (violation rate, means, latency
  percentiles, normalized scores), so driver memory is O(cells), not
  O(inputs).  ``keep_runs=True`` additionally returns the full
  :class:`~repro.runtime.results.RunResult` objects and remains the
  parity reference (``tests/test_sweep_parity.py``);
* **checkpoint/resume** — each completed cell appends one JSONL line
  keyed by a deterministic :meth:`SweepUnit.fingerprint`; a restarted
  sweep skips finished cells and merges checkpointed summaries
  bit-identically with fresh ones (JSON round-trips Python floats
  exactly).

Results are merged in plan order, so pooled output is bit-identical
to serial output (common random numbers, as everywhere in this stack).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

import numpy as np

from repro.core.goals import Goal, ObjectiveKind
from repro.errors import ConfigurationError
from repro.runtime.executor import DEFAULT_FACTORY, CellSpec, ScenarioKey
from repro.runtime.results import VIOLATION_SETTING_THRESHOLD, RunResult
from repro.workloads.scenarios import constraint_grid

__all__ = [
    "SweepSpec",
    "SweepUnit",
    "CellSummary",
    "SweepResult",
    "compile_sweep",
    "run_sweep",
    "summarize_cell",
    "load_checkpoint",
]

#: The scheme whose objective value anchors normalized scores (the
#: Table-4 convention: everything is reported relative to the static
#: oracle).
_BASELINE_SCHEME = "OracleStatic"


# ----------------------------------------------------------------------
# Spec and compiled units
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """One declarative sweep: the cross product the compiler expands.

    ``objectives`` picks which halves of each scenario's constraint
    grid participate (``"min_energy"`` / ``"min_error"``);
    ``settings_stride`` subsamples each half's settings (the drivers'
    ``--stride`` convention).  Invalid (platform, task) combinations —
    e.g. a sentence task on a platform without sentence candidates —
    are skipped at compile time, mirroring the Table-4 driver.
    """

    platforms: tuple[str, ...] = ("CPU1",)
    tasks: tuple[str, ...] = ("image",)
    envs: tuple[str, ...] = ("memory",)
    schemes: tuple[str, ...] = ("Oracle", "OracleStatic", "ALERT")
    objectives: tuple[str, ...] = ("min_energy", "min_error")
    settings_stride: int = 1
    n_inputs: int = 100
    seeds: tuple[int, ...] = (20200417,)
    candidates: str = "standard"
    factory: str = DEFAULT_FACTORY

    def __post_init__(self) -> None:
        for name in ("platforms", "tasks", "envs", "schemes", "objectives"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
            if not getattr(self, name):
                raise ConfigurationError(f"sweep needs at least one of {name}")
        if not isinstance(self.seeds, tuple):
            object.__setattr__(self, "seeds", tuple(self.seeds))
        if not self.seeds:
            raise ConfigurationError("sweep needs at least one seed")
        unknown = set(self.objectives) - {"min_energy", "min_error"}
        if unknown:
            raise ConfigurationError(
                f"unknown objectives {sorted(unknown)}; "
                "choose from 'min_energy'/'min_error'"
            )
        if self.settings_stride < 1:
            raise ConfigurationError(
                f"settings_stride must be >= 1, got {self.settings_stride}"
            )
        if self.n_inputs < 1:
            raise ConfigurationError(
                f"need at least one input, got {self.n_inputs}"
            )

    def fingerprint(self) -> str:
        """Deterministic identity of the whole spec (checkpoint key)."""
        payload = {
            "platforms": list(self.platforms),
            "tasks": list(self.tasks),
            "envs": list(self.envs),
            "schemes": list(self.schemes),
            "objectives": list(self.objectives),
            "settings_stride": self.settings_stride,
            "n_inputs": self.n_inputs,
            "seeds": list(self.seeds),
            "candidates": self.candidates,
            "factory": self.factory,
        }
        return _digest(payload)


def _digest(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _goal_identity(goal: Goal) -> dict:
    return {
        "objective": goal.objective.value,
        "deadline_s": goal.deadline_s,
        "period_s": goal.period_s,
        "accuracy_min": goal.accuracy_min,
        "energy_budget_j": goal.energy_budget_j,
        "prob_threshold": goal.prob_threshold,
    }


@dataclass(frozen=True)
class SweepUnit:
    """One compiled cell: every scheme of one (scenario, goal) pair."""

    scenario: ScenarioKey
    goal: Goal
    schemes: tuple[str, ...]
    n_inputs: int
    factory: str = DEFAULT_FACTORY

    def cell_spec(self) -> CellSpec:
        """The executor spec this unit runs as."""
        return CellSpec(
            scenario=self.scenario,
            goal=self.goal,
            schemes=self.schemes,
            n_inputs=self.n_inputs,
            factory=self.factory,
        )

    def fingerprint(self) -> str:
        """Deterministic cell identity (the checkpoint line key)."""
        payload = {
            "platform": self.scenario.platform,
            "task": self.scenario.task,
            "env": self.scenario.env,
            "candidates": self.scenario.candidates,
            "seed": self.scenario.seed,
            "goal": _goal_identity(self.goal),
            "schemes": list(self.schemes),
            "n_inputs": self.n_inputs,
            "factory": self.factory,
        }
        return _digest(payload)


def compile_sweep(spec: SweepSpec) -> list[SweepUnit]:
    """Expand a sweep spec into its plan-ordered cell units.

    Within one scenario, units are ordered timing-major (all goals
    sharing a deadline are consecutive), so both the per-process grid
    cache and the shared grid store see each grid's whole unit group
    back to back.  Combinations the Table-4 driver would not report
    (GPU × non-image) and scenario construction failures skip that
    combination rather than failing the sweep.
    """
    units: list[SweepUnit] = []
    stride = spec.settings_stride
    for seed in spec.seeds:
        for platform in spec.platforms:
            for task in spec.tasks:
                # The Table-4 driver's platform policy: the GPU column
                # only reports the image task.
                if platform.upper() == "GPU" and task != "image":
                    continue
                for env in spec.envs:
                    key = ScenarioKey(
                        platform=platform,
                        task=task,
                        env=env,
                        candidates=spec.candidates,
                        seed=seed,
                    )
                    try:
                        scenario = key.build()
                    except ConfigurationError:
                        continue
                    grid = constraint_grid(scenario)
                    goals: list[Goal] = []
                    if "min_energy" in spec.objectives:
                        goals.extend(grid.min_energy_goals[::stride])
                    if "min_error" in spec.objectives:
                        goals.extend(grid.min_error_goals[::stride])
                    # Stable sort groups goals by timing while keeping
                    # the objective/floor order within each group.
                    goals.sort(key=lambda g: (g.deadline_s, g.period))
                    units.extend(
                        SweepUnit(
                            scenario=key,
                            goal=goal,
                            schemes=spec.schemes,
                            n_inputs=spec.n_inputs,
                            factory=spec.factory,
                        )
                        for goal in goals
                    )
    return units


# ----------------------------------------------------------------------
# Per-cell summaries (the streaming unit of aggregation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellSummary:
    """Compact aggregate of one scheme's run over one cell.

    Everything here derives deterministically from the
    :class:`~repro.runtime.results.RunResult`, and every float
    round-trips exactly through JSON (``repr`` serialisation), so
    checkpointed summaries merge bit-identically with fresh ones.
    ``normalized_score`` is the run's objective value relative to the
    cell's ``OracleStatic`` run (None when the cell has no baseline
    scheme or the baseline objective is zero).
    """

    scheme: str
    n_inputs: int
    violation_fraction: float
    deadline_miss_fraction: float
    mean_quality: float
    mean_error: float
    mean_energy_j: float
    mean_latency_s: float
    p50_latency_s: float
    p99_latency_s: float
    objective_value: float
    setting_violated: bool
    normalized_score: float | None = None

    @classmethod
    def from_run(cls, run: RunResult) -> "CellSummary":
        # Streaming aggregation: a batch-path run carries its series
        # as RunArrays — summarise those directly and never touch (or
        # materialize) the O(inputs) record list.  Otherwise one pass
        # over the records: reading each aggregate off the RunResult
        # properties would re-walk the record list per property (~9
        # walks, each chasing Python attributes per record), and a
        # sweep summarises every cell.  Either source holds the same
        # float64 values in the same order the properties would
        # reduce, so every aggregate is bit-identical to its property
        # counterpart (the parity suite compares them).
        arrays = run.arrays
        if arrays is not None:
            n = len(arrays.latency_s)
            latency = arrays.latency_s
            quality = arrays.quality
            energy = arrays.energy_j
            violated = arrays.violated
            missed = arrays.latency_violation
        else:
            n = len(run.records)
            latency = np.empty(n)
            quality = np.empty(n)
            energy = np.empty(n)
            violated = np.empty(n, dtype=bool)
            missed = np.empty(n, dtype=bool)
            for i, record in enumerate(run.records):
                outcome = record.outcome
                latency[i] = outcome.latency_s
                quality[i] = outcome.quality
                energy[i] = outcome.energy_j
                violated[i] = record.violated
                missed[i] = record.latency_violation
        mean_quality = float(np.mean(quality))
        mean_energy_j = float(np.mean(energy))
        violation_fraction = float(np.mean(violated))
        objective_value = (
            mean_energy_j
            if run.goal.objective is ObjectiveKind.MINIMIZE_ENERGY
            else 1.0 - mean_quality
        )
        return cls(
            scheme=run.scheduler_name,
            n_inputs=n,
            violation_fraction=violation_fraction,
            deadline_miss_fraction=float(np.mean(missed)),
            mean_quality=mean_quality,
            mean_error=1.0 - mean_quality,
            mean_energy_j=mean_energy_j,
            mean_latency_s=float(np.mean(latency)),
            p50_latency_s=float(np.percentile(latency, 50.0)),
            p99_latency_s=float(np.percentile(latency, 99.0)),
            objective_value=objective_value,
            setting_violated=violation_fraction > VIOLATION_SETTING_THRESHOLD,
        )

    def to_json(self) -> dict:
        return {
            "scheme": self.scheme,
            "n_inputs": self.n_inputs,
            "violation_fraction": self.violation_fraction,
            "deadline_miss_fraction": self.deadline_miss_fraction,
            "mean_quality": self.mean_quality,
            "mean_error": self.mean_error,
            "mean_energy_j": self.mean_energy_j,
            "mean_latency_s": self.mean_latency_s,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "objective_value": self.objective_value,
            "setting_violated": self.setting_violated,
            "normalized_score": self.normalized_score,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CellSummary":
        return cls(**payload)


def summarize_cell(
    schemes: tuple[str, ...], runs: list[RunResult]
) -> tuple[CellSummary, ...]:
    """Summaries for one cell's runs, aligned with ``schemes``.

    Computes each scheme's normalized score against the cell's
    ``OracleStatic`` run when present — worker-side, so the driver
    never needs the runs themselves.
    """
    summaries = [CellSummary.from_run(run) for run in runs]
    baseline = None
    for name, summary in zip(schemes, summaries):
        if name == _BASELINE_SCHEME:
            baseline = summary.objective_value
            break
    if baseline:
        summaries = [
            CellSummary(
                **{
                    **summary.to_json(),
                    "normalized_score": summary.objective_value / baseline,
                }
            )
            for summary in summaries
        ]
    return tuple(summaries)


# ----------------------------------------------------------------------
# Checkpoint I/O
# ----------------------------------------------------------------------
def _checkpoint_line(spec_fp: str, unit_fp: str, summaries) -> str:
    payload = {
        "spec": spec_fp,
        "cell": unit_fp,
        "summaries": [summary.to_json() for summary in summaries],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def load_checkpoint(path, spec_fp: str) -> dict[str, tuple[CellSummary, ...]]:
    """Completed cells from a JSONL checkpoint: fingerprint → summaries.

    Tolerates a corrupted or truncated trailing line (a crash mid-append)
    by skipping anything that does not parse back into a well-formed
    cell record; lines written under a *different* spec fingerprint are
    ignored rather than merged into the wrong sweep.
    """
    cells: dict[str, tuple[CellSummary, ...]] = {}
    if path is None or not os.path.exists(path):
        return cells
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if payload.get("spec") != spec_fp:
                    continue
                fingerprint = payload["cell"]
                summaries = tuple(
                    CellSummary.from_json(entry)
                    for entry in payload["summaries"]
                )
            except (json.JSONDecodeError, KeyError, TypeError):
                continue
            cells[fingerprint] = summaries
    return cells


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
#: Lazily-created state of a sweep pool worker (separate from the
#: executor's ``_POOL_STATE``: a sweep worker returns summaries, not
#: RunResults, so the driver never holds O(inputs) pickled records).
_SWEEP_STATE = None
_SWEEP_GRID_STORE = None


def _sweep_initializer(grid_store=None) -> None:
    global _SWEEP_STATE, _SWEEP_GRID_STORE
    _SWEEP_STATE = None
    _SWEEP_GRID_STORE = grid_store


def _sweep_execute(unit: SweepUnit, keep_runs: bool):
    """Pool entry point: run one cell, return its compact summaries."""
    global _SWEEP_STATE
    if _SWEEP_STATE is None:
        from repro.runtime.executor import _WorkerState

        _SWEEP_STATE = _WorkerState(grid_store=_SWEEP_GRID_STORE)
    runs = _SWEEP_STATE.execute(unit.cell_spec())
    summaries = summarize_cell(unit.schemes, runs)
    return summaries, (runs if keep_runs else None)


@dataclass
class SweepResult:
    """A sweep's plan-ordered outcome: O(cells) summaries.

    ``cells`` aligns one-to-one with ``units``; entries are None only
    for an aborted (``cell_limit``) sweep's unexecuted tail.
    ``runs`` maps unit fingerprints to full per-scheme
    :class:`~repro.runtime.results.RunResult` lists when the sweep ran
    with ``keep_runs=True``.
    """

    spec: SweepSpec
    units: list[SweepUnit]
    cells: list[tuple[CellSummary, ...] | None]
    resumed: int
    executed: int
    complete: bool
    elapsed_s: float
    checkpoint_path: str | None = None
    runs: dict[str, list[RunResult]] | None = None
    grid_store_stats: dict | None = field(default=None)

    @property
    def n_cells(self) -> int:
        return len(self.units)

    def cell(self, index: int) -> tuple[CellSummary, ...]:
        completed = self.cells[index]
        if completed is None:
            raise ConfigurationError(
                f"cell {index} was not executed (aborted sweep)"
            )
        return completed

    def describe(self) -> str:
        done = sum(1 for cell in self.cells if cell is not None)
        rate = self.executed / self.elapsed_s if self.elapsed_s > 0 else 0.0
        lines = [
            f"sweep: {done}/{self.n_cells} cells "
            f"({self.resumed} resumed, {self.executed} executed, "
            f"{'complete' if self.complete else 'partial'}) "
            f"in {self.elapsed_s:.2f}s ({rate:.1f} cells/s executed)",
        ]
        if self.grid_store_stats is not None:
            stats = self.grid_store_stats
            lines.append(
                f"  grid store: {stats['grids']} shared grids, "
                f"{stats['nbytes'] / 1e6:.1f} MB published"
            )
        by_scheme: dict[str, list[float]] = {}
        for cell in self.cells:
            if cell is None:
                continue
            for summary in cell:
                by_scheme.setdefault(summary.scheme, []).append(
                    summary.violation_fraction
                )
        for scheme, fractions in by_scheme.items():
            lines.append(
                f"  {scheme}: mean violation "
                f"{float(np.mean(fractions)) * 100:.1f}% "
                f"over {len(fractions)} cells"
            )
        return "\n".join(lines)


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    grid_store: bool | None = None,
    checkpoint_path: str | None = None,
    resume: bool = True,
    keep_runs: bool = False,
    cell_limit: int | None = None,
) -> SweepResult:
    """Execute a sweep spec: compile, (re)run, stream, checkpoint.

    Parameters
    ----------
    workers:
        1 runs in-process; >1 fans cells out over a process pool.
        Output is bit-identical either way (plan-ordered merge).
    grid_store:
        True shares realised outcome grids across workers through a
        :class:`~repro.runtime.grid_store.SharedGridStore`; False keeps
        the per-process caches; None (default) enables the store
        exactly when it can pay for itself (``workers > 1``).  Store
        construction failures degrade to per-process caches.
    checkpoint_path:
        JSONL file completed cells append to.  With ``resume`` (the
        default) cells already checkpointed under this spec's
        fingerprint are skipped and their summaries merged as-is —
        bit-identical to recomputing them.
    keep_runs:
        Additionally collect every cell's full ``RunResult`` lists
        (driver memory grows to O(inputs); the parity reference).
    cell_limit:
        Execute at most this many *new* cells, then stop — simulating
        a killed sweep for crash-resume testing; the result reports
        ``complete=False`` and the unexecuted tail stays None.
    """
    if workers < 1:
        raise ConfigurationError(f"need at least one worker, got {workers}")
    if cell_limit is not None and cell_limit < 0:
        raise ConfigurationError(
            f"cell_limit must be >= 0, got {cell_limit}"
        )
    started = time.perf_counter()
    spec_fp = spec.fingerprint()
    units = compile_sweep(spec)
    fingerprints = [unit.fingerprint() for unit in units]

    checkpointed: dict[str, tuple[CellSummary, ...]] = {}
    if checkpoint_path is not None and resume:
        checkpointed = load_checkpoint(checkpoint_path, spec_fp)

    cells: list[tuple[CellSummary, ...] | None] = [None] * len(units)
    resumed = 0
    pending: list[int] = []
    for position, fingerprint in enumerate(fingerprints):
        summaries = checkpointed.get(fingerprint)
        if summaries is not None:
            cells[position] = summaries
            resumed += 1
        else:
            pending.append(position)
    if cell_limit is not None:
        pending = pending[:cell_limit]

    store = None
    client = None
    use_store = grid_store if grid_store is not None else workers > 1
    if use_store and pending:
        from repro.runtime.grid_store import SharedGridStore

        try:
            store = SharedGridStore()
            client = store.client()
        except Exception:
            store = None
            client = None

    runs: dict[str, list[RunResult]] | None = {} if keep_runs else None
    handle = None
    try:
        if checkpoint_path is not None and pending:
            handle = open(checkpoint_path, "a", encoding="utf-8")

        def record(position: int, summaries, cell_runs) -> None:
            cells[position] = summaries
            if runs is not None and cell_runs is not None:
                runs[fingerprints[position]] = cell_runs
            if handle is not None:
                handle.write(
                    _checkpoint_line(spec_fp, fingerprints[position], summaries)
                    + "\n"
                )
                handle.flush()

        if workers == 1 or len(pending) <= 1:
            from repro.runtime.executor import _WorkerState

            state = _WorkerState(grid_store=client)
            for position in pending:
                unit_runs = state.execute(units[position].cell_spec())
                summaries = summarize_cell(units[position].schemes, unit_runs)
                record(
                    position, summaries, unit_runs if keep_runs else None
                )
        elif pending:
            n_workers = min(workers, len(pending))
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_sweep_initializer,
                initargs=(client,),
            ) as pool:
                futures = {
                    pool.submit(_sweep_execute, units[position], keep_runs):
                    position
                    for position in pending
                }
                outstanding = set(futures)
                while outstanding:
                    done, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        position = futures[future]
                        summaries, cell_runs = future.result()
                        record(position, summaries, cell_runs)
    finally:
        if handle is not None:
            handle.close()
        stats = store.stats() if store is not None else None
        if store is not None:
            store.close()

    executed = len(pending)
    complete = all(cell is not None for cell in cells)
    return SweepResult(
        spec=spec,
        units=units,
        cells=cells,
        resumed=resumed,
        executed=executed,
        complete=complete,
        elapsed_s=time.perf_counter() - started,
        checkpoint_path=checkpoint_path,
        runs=runs,
        grid_store_stats=stats,
    )
