"""The scheduler protocol and the ALERT adapter.

Every policy evaluated in the paper — ALERT and its ablations, the
oracles, and the single-layer baselines — implements the same tiny
interface: *decide* a configuration for the next input and *observe*
the measured outcome of the previous one.  The serving loop is policy
agnostic; all behavioural differences live behind this protocol.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.config_space import Configuration
from repro.core.controller import AlertCellController, AlertController
from repro.core.goals import Goal
from repro.core.kernel import measurement_from_outcome
from repro.errors import ConfigurationError
from repro.models.base import DnnModel
from repro.models.inference import InferenceOutcome
from repro.workloads.inputs import InputItem

__all__ = ["Scheduler", "AlertScheduler", "StaticScheduler"]


@runtime_checkable
class Scheduler(Protocol):
    """What the serving loop needs from a policy.

    Policies may additionally declare three optional members the loop
    probes with ``getattr``:

    * ``feedback_free`` (bool, default False) — a promise that
      ``decide`` never depends on anything ``observe`` saw and that
      ``observe`` is a no-op.  The serving loop realises such runs on
      the vectorized batch fast path (one engine pass instead of
      per-input round trips) and may skip ``observe`` entirely.
    * ``decide_batch(items, goal)`` — vectorized decisions for a whole
      run at once; only consulted on the batch fast path.
    * ``grid_view`` (:class:`repro.models.inference.GridView` or None)
      — a shared-realisation view the loop may serve the run's engine
      outcomes from (the fused-cell execution path); purely an
      optimisation, never a behaviour change.
    """

    name: str

    def decide(self, item: InputItem, goal: Goal) -> Configuration:
        """Pick the configuration for ``item`` under ``goal``."""
        ...  # pragma: no cover - protocol

    def observe(self, outcome: InferenceOutcome) -> None:
        """Fold in the measured outcome of the input just served."""
        ...  # pragma: no cover - protocol


class AlertScheduler:
    """Adapts :class:`AlertController` to the scheduler protocol.

    The adapter also implements the measurement conventions the
    controller documents:

    * the ξ observation uses the run-to-completion latency; for anytime
      runs stopped early the engine's ``full_latency_s`` stands in for
      the rung-timestamp extrapolation a real deployment performs;
    * the idle-power filter only receives samples from periods that
      actually had an idle phase.
    """

    #: ALERT's whole point is reacting to observed slowdowns.
    feedback_free = False

    def __init__(
        self,
        controller: AlertController,
        name: str = "ALERT",
        grid_view=None,
    ) -> None:
        self.controller = controller
        self.name = name
        self.grid_view = grid_view

    @property
    def kernel(self):
        """The clock-free decision kernel behind this scheduler.

        Event-loop drivers (:mod:`repro.serve`) feed the kernel
        :class:`~repro.core.kernel.Measurement` records directly; the
        batch harness keeps using :meth:`observe` with outcome records.
        """
        return self.controller.kernel

    def decide(self, item: InputItem, goal: Goal) -> Configuration:
        result = self.controller.kernel.decide(goal)
        return result.config

    def observe(self, outcome: InferenceOutcome) -> None:
        self.controller.kernel.observe(measurement_from_outcome(outcome))

    @property
    def state(self):
        """The controller's filter state (for traces)."""
        return self.controller.state()

    @staticmethod
    def stack_into_cell(schedulers):
        """Lockstep hook: stack per-goal runs into one cell controller.

        Defined on the class itself (the lockstep loop refuses
        inherited hooks, so subclasses with overridden behaviour stay
        on the sequential path).  Returns ``None`` when the underlying
        controllers cannot stack — see
        :meth:`repro.core.controller.AlertCellController.from_controllers`.
        """
        return AlertCellController.from_controllers(
            [scheduler.controller for scheduler in schedulers]
        )


class StaticScheduler:
    """Serves every input with one fixed configuration.

    The building block of OracleStatic and of ad-hoc experiments that
    sweep single configurations (Figures 2 and 3).
    """

    #: A fixed configuration never reads feedback; the serving loop
    #: may realise whole runs in one batch pass.
    feedback_free = True

    def __init__(
        self,
        model: DnnModel,
        power_w: float,
        rung_cap: int | None = None,
        name: str | None = None,
        grid_view=None,
    ) -> None:
        if power_w <= 0:
            raise ConfigurationError(f"power must be positive, got {power_w}")
        self._config = Configuration(model=model, power_w=power_w, rung_cap=rung_cap)
        self.name = name if name is not None else f"static:{self._config.describe()}"
        self.grid_view = grid_view

    def decide(self, item: InputItem, goal: Goal) -> Configuration:
        return self._config

    def decide_batch(self, items, goal: Goal) -> list[Configuration]:
        """A whole run's decisions at once: the fixed configuration."""
        return [self._config] * len(items)

    def observe(self, outcome: InferenceOutcome) -> None:
        """Static policies ignore feedback."""
