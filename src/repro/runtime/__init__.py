"""The feedback serving loop and its measurement records.

* :mod:`repro.runtime.scheduler` — the :class:`Scheduler` protocol all
  policies implement, plus :class:`AlertScheduler` adapting
  :class:`repro.core.AlertController` to it.
* :mod:`repro.runtime.loop` — :class:`ServingLoop`, which drives one
  policy over one scenario's input stream and environment, applying
  goal adjustment and recording per-input measurements.
* :mod:`repro.runtime.results` — :class:`ServedInput` and
  :class:`RunResult` with the violation accounting the paper's tables
  use (a setting "violates" when more than 10% of its inputs break a
  constraint).
"""

from repro.runtime.loop import ServingLoop
from repro.runtime.results import RunResult, ServedInput
from repro.runtime.scheduler import AlertScheduler, Scheduler, StaticScheduler

__all__ = [
    "ServingLoop",
    "RunResult",
    "ServedInput",
    "Scheduler",
    "AlertScheduler",
    "StaticScheduler",
]
