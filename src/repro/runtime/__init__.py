"""The serving loop, its measurement records, and the run executor.

* :mod:`repro.runtime.scheduler` — the :class:`Scheduler` protocol all
  policies implement, plus :class:`AlertScheduler` adapting
  :class:`repro.core.AlertController` to it.
* :mod:`repro.runtime.loop` — :class:`ServingLoop`, which drives one
  policy over one scenario's input stream and environment, applying
  goal adjustment and recording per-input measurements; feedback-free
  policies are served on a vectorized batch fast path.
* :mod:`repro.runtime.results` — :class:`ServedInput` and
  :class:`RunResult` with the violation accounting the paper's tables
  use (a setting "violates" when more than 10% of its inputs break a
  constraint).
* :mod:`repro.runtime.executor` — :class:`RunSpec`,
  :class:`CellSpec`, and :class:`RunExecutor`: declarative
  (scenario × goal × scheme) run plans — isolated runs or fused cells
  sharing one outcome-grid realisation per timing — executed serially
  or across a process pool with a deterministic, bit-identical merge.
"""

from repro.runtime.loop import ServingLoop
from repro.runtime.results import RunResult, ServedInput
from repro.runtime.scheduler import AlertScheduler, Scheduler, StaticScheduler

# Imported last: the executor builds on the loop and results modules.
from repro.runtime.executor import CellSpec, RunExecutor, RunSpec, ScenarioKey

__all__ = [
    "ServingLoop",
    "RunResult",
    "ServedInput",
    "Scheduler",
    "AlertScheduler",
    "StaticScheduler",
    "RunExecutor",
    "RunSpec",
    "CellSpec",
    "ScenarioKey",
]
