"""Deterministic random-number management.

Every stochastic component in the simulator draws from a
:class:`numpy.random.Generator` that is derived from a single root seed
through named streams.  This gives two properties the experiments rely
on:

* **Reproducibility** — rerunning any experiment with the same seed
  produces bit-identical results, which the test-suite asserts.
* **Common random numbers** — different scheduler policies evaluated on
  the "same" workload really do see the same per-input randomness
  (input difficulty, contention phases), because each concern draws
  from its own named stream rather than sharing one sequence whose
  consumption order would differ between policies.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "stream", "SeedSequenceFactory"]

_MASK_63 = (1 << 63) - 1


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of stream names.

    The derivation hashes the root seed together with the name path so
    that streams are statistically independent and insensitive to the
    order in which other streams are created.

    >>> derive_seed(42, "engine") != derive_seed(42, "workload")
    True
    >>> derive_seed(42, "engine") == derive_seed(42, "engine")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        digest.update(b"/")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") & _MASK_63


def stream(root_seed: int, *names: str) -> np.random.Generator:
    """Return a fresh generator for the named stream under ``root_seed``."""
    return np.random.default_rng(derive_seed(root_seed, *names))


class SeedSequenceFactory:
    """Factory handing out named, independent random streams.

    Parameters
    ----------
    root_seed:
        The experiment-level seed. All streams are derived from it.

    Examples
    --------
    >>> factory = SeedSequenceFactory(7)
    >>> gen_a = factory.stream("contention")
    >>> gen_b = factory.stream("inputs", "nlp")
    >>> float(gen_a.random()) != float(gen_b.random())
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)

    def seed(self, *names: str) -> int:
        """Return the derived integer seed for a named stream."""
        return derive_seed(self.root_seed, *names)

    def stream(self, *names: str) -> np.random.Generator:
        """Return a generator for a named stream."""
        return stream(self.root_seed, *names)

    def __repr__(self) -> str:
        return f"SeedSequenceFactory(root_seed={self.root_seed})"
