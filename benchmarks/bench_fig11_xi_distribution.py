"""Bench: regenerate Figure 11 (observed ξ vs Gaussian fit)."""

from __future__ import annotations

from repro.experiments import fig11_xi_distribution


def test_fig11(once):
    result = once(fig11_xi_distribution.run, n_inputs=300)
    default = result.for_env("default").fit
    compute = result.for_env("compute").fit
    memory = result.for_env("memory").fit
    # Default: concentrated just around 1.0 (Figure 11 top panel).
    assert 0.95 < default.mean < 1.06
    assert default.sigma < 0.1
    # Contention shifts the distribution right and widens it; memory
    # more than compute.
    assert memory.mean > compute.mean > 1.1
    assert memory.sigma > default.sigma
    # "The observed ξs are indeed not a perfect fit for Gaussian
    # distribution in all scenarios" — nonzero KS distance everywhere,
    # but small enough that the Gaussian remains workable.
    for env in ("default", "compute", "memory"):
        fit = result.for_env(env).fit
        assert 0.0 < fit.ks_statistic < 0.5
