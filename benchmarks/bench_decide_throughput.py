"""Decision throughput: scalar vs. batch vs. stacked multi-goal.

Measures ``ConfigSelector`` decisions/second on the Table 4 candidate
set (the full image model family plus the anytime ladder, across every
CPU1 power level) over a representative mix of goals and filter
states drawn from the Table 4 constraint grid, and writes the result
to ``BENCH_decide.json`` at the repository root so the performance
trajectory of the decision engine is tracked from PR to PR.

Two comparisons are recorded: the scalar reference loop vs. the
vectorized single-state batch path (PR 1), and per-goal ``select``
calls vs. one stacked ``select_many`` pass over a whole goal grid —
the lockstep engine's inner step, where every goal's estimate comes
from a single fused erf evaluation and every ranking from one
segment-wise lexsort (PR 5).

Run directly (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_decide_throughput.py
    PYTHONPATH=src python benchmarks/bench_decide_throughput.py --smoke

``--smoke`` runs a sub-second miniature and writes nothing — CI
invokes it so the script cannot rot, and the bench-regression gate
reuses :func:`run` with a short window to compare the measured
``speedup`` ratio against the committed baseline (ratios are
machine-relative, so they transfer across runner hardware).

The file is named ``bench_*`` on purpose: the tier-1 pytest run only
collects ``test_*`` files, so this never slows the test gate.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.config_space import ConfigurationSpace
from repro.core.estimator import AlertEstimator
from repro.core.goals import Goal, ObjectiveKind
from repro.core.selector import ConfigSelector
from repro.models.families import depth_nest_anytime, sparse_resnet_family
from repro.models.profiles import Profiler
from repro.hw.machine import CPU1

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_decide.json"

#: Filter states a serving loop actually visits: converged quiet,
#: drifting, stormy (high sigma + tail), and mean-only-like points.
STATES = [
    (1.0, 0.02, 0.15, (0.0, 1.0)),
    (1.05, 0.05, 0.18, (0.01, 1.8)),
    (1.4, 0.12, 0.3, (0.02, 2.2)),
    (1.9, 0.4, 0.5, (0.06, 2.6)),
    (0.85, 1e-6, 0.22, None),
    (2.6, 0.25, 0.9, (0.04, 2.0)),
]


def _goal_mix() -> list[Goal]:
    """Both objectives, with and without Pr_th, several tightnesses."""
    goals: list[Goal] = []
    for deadline in (0.08, 0.2, 0.5):
        for prob in (None, 0.95):
            goals.append(
                Goal(
                    objective=ObjectiveKind.MINIMIZE_ENERGY,
                    deadline_s=deadline,
                    accuracy_min=0.9,
                    prob_threshold=prob,
                )
            )
            goals.append(
                Goal(
                    objective=ObjectiveKind.MAXIMIZE_ACCURACY,
                    deadline_s=deadline,
                    energy_budget_j=8.0,
                    prob_threshold=prob,
                )
            )
    return goals


def _throughput(select, workload, min_seconds: float) -> float:
    """Decisions per second of one select callable over the workload."""
    # Warm up caches (thresholds, q_min statics) outside the clock.
    for goal, (xi_mean, xi_sigma, phi, tail) in workload:
        select(goal, xi_mean, xi_sigma, phi, tail=tail)
    count = 0
    start = time.perf_counter()
    while time.perf_counter() - start < min_seconds:
        for goal, (xi_mean, xi_sigma, phi, tail) in workload:
            select(goal, xi_mean, xi_sigma, phi, tail=tail)
        count += len(workload)
    return count / (time.perf_counter() - start)


def _multi_goal_throughput(selector, min_seconds: float) -> dict:
    """Stacked ``select_many`` vs. per-goal ``select`` on a goal grid.

    The workload is one lockstep step: a Table-3-shaped constraint
    grid (one objective, 3 deadlines × 5 accuracy floors — the
    homogeneous structure a fused cell's goals actually have) with one
    filter state per goal (each goal's ALERT run owns its own state,
    so every state differs), decided either with one stacked pass or
    with a per-goal loop.  Decisions/second counts one decision per
    (goal, step).
    """
    goals = [
        Goal(
            objective=ObjectiveKind.MINIMIZE_ENERGY,
            deadline_s=deadline,
            accuracy_min=floor,
        )
        for deadline in (0.08, 0.2, 0.5)
        for floor in (0.82, 0.86, 0.9, 0.94, 0.98)
    ]
    tailed = [state for state in STATES if state[3] is not None]
    states = [tailed[i % len(tailed)] for i in range(len(goals))]
    means = [s[0] for s in states]
    sigmas = [s[1] for s in states]
    phis = [s[2] for s in states]
    tails = [s[3] for s in states]

    def stacked() -> None:
        selector.select_many(goals, means, sigmas, phis, tails)

    def per_goal() -> None:
        for goal, (mean, sigma, phi, tail) in zip(goals, states):
            selector.select(goal, mean, sigma, phi, tail=tail)

    def rate(fn) -> float:
        fn()  # warm caches outside the clock
        count = 0
        start = time.perf_counter()
        while time.perf_counter() - start < min_seconds:
            fn()
            count += len(goals)
        return count / (time.perf_counter() - start)

    stacked_dps = rate(stacked)
    per_goal_dps = rate(per_goal)
    return {
        "n_goals": len(goals),
        "per_goal_decisions_per_sec": round(per_goal_dps, 1),
        "stacked_decisions_per_sec": round(stacked_dps, 1),
        "speedup": round(stacked_dps / per_goal_dps, 2),
    }


def run(min_seconds: float = 2.0) -> dict:
    models = list(sparse_resnet_family()) + [depth_nest_anytime()]
    profile = Profiler(CPU1).analytic(models)
    space = ConfigurationSpace(models, list(profile.powers))
    estimator = AlertEstimator(profile)
    selector = ConfigSelector(space, estimator, use_batch=True)

    workload = [(goal, state) for goal in _goal_mix() for state in STATES]
    batch_dps = _throughput(selector.select, workload, min_seconds)
    scalar_dps = _throughput(selector.select_scalar, workload, min_seconds)

    result = {
        "benchmark": "decide_throughput",
        "platform": "CPU1",
        "candidate_set": "table4_image",
        "n_configs": len(space),
        "n_workload_points": len(workload),
        "scalar_decisions_per_sec": round(scalar_dps, 1),
        "batch_decisions_per_sec": round(batch_dps, 1),
        "speedup": round(batch_dps / scalar_dps, 2),
        "multi_goal": _multi_goal_throughput(selector, min_seconds),
    }
    return result


def smoke() -> None:
    """Sub-second end-to-end exercise of every path (for CI)."""
    result = run(min_seconds=0.05)
    assert result["speedup"] > 0
    assert result["multi_goal"]["speedup"] > 0
    print("bench_decide_throughput smoke ok")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run exercising both paths; writes no JSON",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
        return
    result = run()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if result["speedup"] < 10.0:
        print("WARNING: batch path below the 10x target")


if __name__ == "__main__":
    main()
