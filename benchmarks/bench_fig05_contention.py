"""Bench: regenerate Figure 5 (latency variance with co-located jobs)."""

from __future__ import annotations

from repro.experiments import fig05_contention


def test_fig05(once):
    result = once(fig05_contention.run, n_samples=60)
    # Paper: co-location raises the median, the tail, and their gap,
    # for all tasks on all platforms.
    for task, platform in result.combinations():
        assert result.median_inflation(task, platform) > 1.1
        assert result.tail_inflation(task, platform) > 1.1
    # CPUs suffer more than the GPU (contention profiles).
    assert result.median_inflation("IMG2", "CPU1") > result.median_inflation(
        "IMG2", "GPU"
    )
