"""Harness throughput: serving, cell fusion, lockstep, multi-worker.

Four layers of the spec → executor → loop stack are measured on the
Table 4 image scenario (CPU1, default environment):

* **Serving loop** — for each feedback-free scheme (Oracle with a
  precomputed grid, OracleStatic, App-only), one run served by the
  sequential per-input round trip (``batch=False``) versus the batch
  fast path (``batch=True``), in inputs/second.
* **Cell fusion** — whole (goal × scheme) cells evaluated by
  :func:`repro.experiments.harness.evaluate_schemes` with
  ``fuse_cells=True`` (one outcome grid per timing serving every
  scheme through a trusted grid view) versus ``fuse_cells=False``
  (the PR 3 path: isolated per-run realisations), in cells/second —
  once for the feedback-free scheme subset and once for the full
  Table 4 zoo.  Fused results are bit-identical to unfused, so this
  too is purely a wall-clock measurement.
* **Lockstep** — the full Table 4 zoo over a Table-3-shaped goal grid,
  fused with the lockstep multi-goal decision engine
  (``lockstep=True``: every ALERT-family and Sys-only scheme advances
  all goals together, one stacked estimator/selector pass per input)
  versus the PR 4 fused per-goal path (``lockstep=False``).  Results
  are value-identical (``tests/test_lockstep_parity.py``); the section
  also records the decision-path health counters (stacked batch
  sizes, memo hit rates) from
  :data:`repro.runtime.loop.LOCKSTEP_TELEMETRY`.
* **Cross-scheme** — the *full* Table 4 zoo (all nine schemes,
  oracles included) over a 3×5 goal grid, fused + lockstep with
  ``cross_scheme=True`` (every stacking scheme advances the input
  stream as a lane of one
  :class:`repro.runtime.loop.CrossSchemeLockstepLoop`, sharing the
  per-input grid reads; records realised goal-major after the run)
  versus ``cross_scheme=False`` (the PR 5 per-scheme lockstep cells).
  Results are value-identical (``tests/test_cross_scheme_parity.py``);
  the section records the cross-scheme decision-path counters
  (``cross_cells``/``cross_lanes``/``sequential_inputs``) so the
  zero-per-input-Python property is visible in the artifact.
* **Serving front-end** — the open-loop fleet (:mod:`repro.serve`)
  against the sequential harness: a one-replica fleet serves the same
  outcomes through the virtual-time event loop, so the ratio isolates
  the front-end's per-request overhead; multi-replica per-policy rates
  ride along as absolute context.
* **Run executor** — a table4-style cell plan (constraint-grid goals ×
  schemes, ALERT included so the plan carries real feedback work)
  executed by :class:`repro.runtime.executor.RunExecutor` with 1, 2,
  and 4 workers, in cells/second.  Parallel results are bit-identical
  to serial, so this is purely a wall-clock measurement; speedup is
  bounded by the machine's core count, which is recorded alongside
  (``parallel_efficiency`` is speedup divided by usable workers —
  near 1.0 means near-linear scaling up to that worker count).
* **Sweep engine** — a compiled sweep plan (PR 8) executed with the
  :class:`repro.runtime.grid_store.SharedGridStore` versus plain
  per-process grid caches, at one worker and at two dedicated worker
  processes splitting the plan evenly, in cells/second; plus the
  driver's peak RSS per cell at two plan sizes ≥4× apart, pinning the
  streaming-aggregation claim that driver memory is O(cells) in
  compact summaries, not O(inputs) in retained runs.  Cells are
  bit-identical either way (``tests/test_sweep_parity.py``), so the
  store ratio is purely a wall-clock measurement.

Every section records the measuring box's ``cpu_count``: ratio
metrics transfer across machines, but the executor's pool ratios do
not, so the CI gate compares those only when the committed artifact
was written on a box with the same core count.

Results land in ``BENCH_harness.json`` at the repository root so the
harness-path performance trajectory is tracked from PR to PR.  Run
directly (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_harness_throughput.py
    PYTHONPATH=src python benchmarks/bench_harness_throughput.py --smoke

``--smoke`` runs a seconds-scale miniature of every measurement and
writes nothing — CI invokes it so the script cannot rot.  The CI
bench-regression gate additionally calls :func:`quick_metrics` and
compares the machine-relative speedup ratios against the committed
baseline (see ``benchmarks/README.md``).

The file is named ``bench_*`` on purpose: the tier-1 pytest run only
collects ``test_*`` files, so this never slows the test gate.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.baselines import make_alert
from repro.core.goals import Goal, ObjectiveKind
from repro.experiments.harness import SCHEMES, evaluate_schemes, make_scheme
from repro.models.inference import shared_grid_layout
from repro.runtime.executor import (
    RunExecutor,
    RunSpec,
    ScenarioKey,
    _WorkerState,
    timing_grid,
)
from repro.runtime.grid_store import SharedGridStore
from repro.runtime.loop import LOCKSTEP_TELEMETRY, ServingLoop
from repro.runtime.sweep import SweepSpec, compile_sweep, summarize_cell
from repro.serve import FleetConfig, build_fleet
from repro.serve.policies import POLICY_KINDS
from repro.workloads.scenarios import build_scenario, constraint_grid

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_harness.json"

FEEDBACK_FREE_SCHEMES = ("Oracle", "OracleStatic", "App-only")
TABLE4_SCHEMES = (
    "ALERT",
    "ALERT-Any",
    "Sys-only",
    "App-only",
    "No-coord",
    "Oracle",
    "OracleStatic",
)
PLAN_SCHEMES = ("ALERT", "Oracle", "OracleStatic", "App-only")
WORKER_COUNTS = (1, 2, 4)


def _repeat(fn, min_seconds: float) -> tuple[int, float]:
    """(repetitions, elapsed seconds) of ``fn`` over at least a window."""
    fn()  # warm-up outside the clock
    count = 0
    start = time.perf_counter()
    while time.perf_counter() - start < min_seconds:
        fn()
        count += 1
    return count, time.perf_counter() - start


def _best_rate(fn, units: int, min_seconds: float, windows: int = 3) -> float:
    """Best units/second over several windows (robust to noise spikes)."""
    best = 0.0
    for _ in range(windows):
        reps, elapsed = _repeat(fn, min_seconds)
        best = max(best, reps * units / elapsed)
    return best


def _scenario(seed: int = 20200501):
    return build_scenario("CPU1", "image", "default", "standard", seed=seed)


def bench_serving(n_inputs: int, min_seconds: float) -> dict:
    """Sequential loop vs. batch fast path, per feedback-free scheme."""
    scenario = _scenario()
    goal = Goal(
        objective=ObjectiveKind.MINIMIZE_ENERGY,
        deadline_s=scenario.anchor_latency_s(),
        accuracy_min=0.9,
    )
    # The harness always shares the per-timing outcome grid with the
    # oracles; serve them the same way here.
    grid = timing_grid(scenario, goal, n_inputs)
    schemes: dict = {}
    for name in FEEDBACK_FREE_SCHEMES:
        engine = scenario.make_engine()
        stream = scenario.make_stream()
        scheduler = make_scheme(
            name, scenario, engine, stream, goal, n_inputs, oracle_grid=grid
        )
        loop = ServingLoop(engine, stream, scheduler, goal)

        sequential_ips = _best_rate(
            lambda: loop.run(n_inputs, batch=False), n_inputs, min_seconds
        )
        batch_ips = _best_rate(
            lambda: loop.run(n_inputs, batch=True), n_inputs, min_seconds
        )
        schemes[name] = {
            "sequential_inputs_per_sec": round(sequential_ips, 1),
            "batch_inputs_per_sec": round(batch_ips, 1),
            "speedup": round(batch_ips / sequential_ips, 2),
        }
    return {
        "n_inputs": n_inputs,
        "cpu_count": os.cpu_count(),
        "schemes": schemes,
        "min_speedup": min(entry["speedup"] for entry in schemes.values()),
    }


def _table3_goals(scenario, n_deadlines: int, n_floors: int) -> list[Goal]:
    """A Table-3-shaped constraint subset: floors nested per deadline.

    This is the shape real cells have (35 settings = 7 deadlines × 5
    accuracy floors), so goals sharing a timing — and therefore one
    outcome grid — appear in realistic proportion.
    """
    goals = list(constraint_grid(scenario).min_energy_goals)
    deadlines: dict[float, list[Goal]] = {}
    for goal in goals:
        deadlines.setdefault(goal.deadline_s, []).append(goal)
    subset: list[Goal] = []
    for deadline in sorted(deadlines)[:n_deadlines]:
        subset.extend(deadlines[deadline][:n_floors])
    return subset


def bench_cell_fusion(
    n_deadlines: int, n_floors: int, n_inputs: int, repeats: int = 3
) -> dict:
    """Fused vs. unfused whole-cell evaluation, per scheme subset."""
    scenario = _scenario()
    goals = _table3_goals(scenario, n_deadlines, n_floors)
    sections: dict = {}
    for label, schemes in (
        ("feedback_free", FEEDBACK_FREE_SCHEMES),
        ("table4", TABLE4_SCHEMES),
    ):
        timings = {}
        for fused in (True, False):
            evaluate_schemes(
                scenario, goals, schemes, n_inputs=n_inputs, fuse_cells=fused
            )  # warm-up (grids, profiles, memos)
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                evaluate_schemes(
                    scenario, goals, schemes, n_inputs=n_inputs,
                    fuse_cells=fused,
                )
                best = min(best, time.perf_counter() - start)
            timings[fused] = best
        sections[label] = {
            "schemes": list(schemes),
            "fused_seconds": round(timings[True], 4),
            "unfused_seconds": round(timings[False], 4),
            "fused_cells_per_sec": round(len(goals) / timings[True], 2),
            "unfused_cells_per_sec": round(len(goals) / timings[False], 2),
            "speedup": round(timings[False] / timings[True], 2),
        }
    return {
        "n_goals": len(goals),
        "n_deadlines": n_deadlines,
        "n_floors": n_floors,
        "n_inputs": n_inputs,
        "cpu_count": os.cpu_count(),
        "feedback_free": sections["feedback_free"],
        "table4": sections["table4"],
        "note": (
            "fused = evaluate_schemes(fuse_cells=True): one outcome grid "
            "per timing serves every scheme of the cell; unfused is the "
            "PR 3 isolated-run path.  Results are bit-identical "
            "(tests/test_cell_fusion_parity.py); speedup is wall-clock."
        ),
    }


def bench_lockstep(
    n_deadlines: int, n_floors: int, n_inputs: int, repeats: int = 3
) -> dict:
    """Fused+lockstep vs. fused per-goal, full Table 4 zoo cell."""
    scenario = _scenario()
    goals = _table3_goals(scenario, n_deadlines, n_floors)
    timings = {}
    telemetry = None
    for lockstep in (True, False):
        evaluate_schemes(
            scenario, goals, TABLE4_SCHEMES, n_inputs=n_inputs,
            fuse_cells=True, lockstep=lockstep,
        )  # warm-up (grids, profiles, memos)
        best = float("inf")
        for _ in range(repeats):
            LOCKSTEP_TELEMETRY.reset()
            start = time.perf_counter()
            evaluate_schemes(
                scenario, goals, TABLE4_SCHEMES, n_inputs=n_inputs,
                fuse_cells=True, lockstep=lockstep,
            )
            best = min(best, time.perf_counter() - start)
            if lockstep:
                telemetry = LOCKSTEP_TELEMETRY.snapshot()
        timings[lockstep] = best
    return {
        "n_goals": len(goals),
        "n_deadlines": n_deadlines,
        "n_floors": n_floors,
        "n_inputs": n_inputs,
        "cpu_count": os.cpu_count(),
        "schemes": list(TABLE4_SCHEMES),
        "lockstep_seconds": round(timings[True], 4),
        "per_goal_seconds": round(timings[False], 4),
        "lockstep_cells_per_sec": round(len(goals) / timings[True], 2),
        "per_goal_cells_per_sec": round(len(goals) / timings[False], 2),
        "speedup": round(timings[False] / timings[True], 2),
        "decision_path": telemetry,
        "note": (
            "lockstep = evaluate_schemes(fuse_cells=True, lockstep=True): "
            "ALERT-family and Sys-only runs advance the whole goal grid "
            "together, one stacked estimator/selector pass per input "
            "step; per_goal is the PR 4 fused path (lockstep=False).  "
            "Results are value-identical "
            "(tests/test_lockstep_parity.py); decision_path holds the "
            "stacked batch-size and memo counters of the measured run."
        ),
    }


def bench_cross_scheme(
    n_deadlines: int, n_floors: int, n_inputs: int, repeats: int = 3
) -> dict:
    """Cross-scheme fused cells vs. per-scheme lockstep, full zoo."""
    scenario = _scenario()
    goals = _table3_goals(scenario, n_deadlines, n_floors)
    timings = {True: float("inf"), False: float("inf")}
    telemetry = None
    for cross in (True, False):
        evaluate_schemes(
            scenario, goals, SCHEMES, n_inputs=n_inputs,
            fuse_cells=True, lockstep=True, cross_scheme=cross,
        )  # warm-up (grids, profiles, memos)
    # Interleave the two modes inside each repeat: the paths are close
    # enough (~5%) that measuring one mode's whole block first lets
    # clock/load drift masquerade as a speedup (or slowdown) on noisy
    # single-core runners; alternating exposes both modes to the same
    # drift and best-of-``repeats`` does the rest.
    for _ in range(repeats):
        for cross in (False, True):
            LOCKSTEP_TELEMETRY.reset()
            start = time.perf_counter()
            evaluate_schemes(
                scenario, goals, SCHEMES, n_inputs=n_inputs,
                fuse_cells=True, lockstep=True, cross_scheme=cross,
            )
            timings[cross] = min(
                timings[cross], time.perf_counter() - start
            )
            if cross:
                telemetry = LOCKSTEP_TELEMETRY.snapshot()
    return {
        "n_goals": len(goals),
        "n_deadlines": n_deadlines,
        "n_floors": n_floors,
        "n_inputs": n_inputs,
        "cpu_count": os.cpu_count(),
        "schemes": list(SCHEMES),
        "cross_seconds": round(timings[True], 4),
        "per_scheme_seconds": round(timings[False], 4),
        "cross_cells_per_sec": round(len(goals) / timings[True], 2),
        "per_scheme_cells_per_sec": round(len(goals) / timings[False], 2),
        "speedup": round(timings[False] / timings[True], 2),
        "decision_path": telemetry,
        "note": (
            "cross = evaluate_schemes(cross_scheme=True): all stacking "
            "schemes of the cell (ALERT family, Sys-only, No-coord) step "
            "the input stream together as lanes of one "
            "CrossSchemeLockstepLoop, sharing the per-input grid reads; "
            "per_scheme is the PR 5 lockstep path (cross_scheme=False).  "
            "Results are value-identical "
            "(tests/test_cross_scheme_parity.py); decision_path shows "
            "sequential_inputs=0 — zero per-input Python decide/observe "
            "calls for the stacked schemes."
        ),
    }


def bench_serving_frontend(
    n_requests: int, min_seconds: float, fleet_replicas: int = 4
) -> dict:
    """Event-loop fleet vs. the sequential closed-loop harness.

    The gated ratios are the apples-to-apples ones: a *one-replica*
    fleet performs exactly the harness's engine/controller work per
    request (the parity test pins the outcomes bit-identical), so
    ``relative_throughput`` isolates the virtual-time event-loop
    overhead of the front-end — arrival events, admission, dispatch,
    completion callbacks.  ``batching.speedup`` compares the same
    overloaded one-replica fleet at ``batch_size`` 8 vs 1: a deep
    queue lets one kernel decide carry a whole batch, so the ratio
    measures the decision cost batching amortises away.  The
    multi-replica per-policy rates are informational (absolute,
    machine-dependent).
    """
    scenario = _scenario()
    profile = scenario.profile()
    anchor = scenario.anchor_latency_s()
    goal = Goal(
        objective=ObjectiveKind.MINIMIZE_ENERGY,
        deadline_s=1.25 * anchor,
        accuracy_min=0.9,
    )

    def harness_once():
        ServingLoop(
            scenario.make_engine(), scenario.make_stream(),
            make_alert(profile), goal,
        ).run(n_requests, batch=False)

    def fleet_once(
        n_replicas: int,
        policy: str,
        rate_hz: float | None = None,
        batch_size: int = 1,
    ):
        # Through the one construction path (FleetConfig names the
        # bench scenario's seed, so the lanes are the harness's twins).
        build_fleet(
            FleetConfig(
                platform="CPU1", task="image", env="default",
                seed=20200501, deadline_factor=1.25, accuracy_min=0.9,
                replicas=n_replicas, policy=policy,
                arrivals="poisson", rate_hz=rate_hz, arrival_seed=7,
                queue_capacity=None, batch_size=batch_size,
            )
        ).run_requests(n_requests)

    harness_rps = _best_rate(harness_once, n_requests, min_seconds)
    single_rps = _best_rate(
        lambda: fleet_once(1, "round-robin"), n_requests, min_seconds
    )
    policies = {
        policy: round(
            _best_rate(
                lambda: fleet_once(fleet_replicas, policy),
                n_requests,
                min_seconds,
            ),
            1,
        )
        for policy in POLICY_KINDS
    }
    # Batching only amortises when the queue is deep: overload one
    # replica fourfold so dispatches drain whole batches.
    burst_hz = 4.0 / anchor
    unbatched_rps = _best_rate(
        lambda: fleet_once(1, "round-robin", rate_hz=burst_hz),
        n_requests,
        min_seconds,
    )
    batched_rps = _best_rate(
        lambda: fleet_once(1, "round-robin", rate_hz=burst_hz, batch_size=8),
        n_requests,
        min_seconds,
    )
    return {
        "n_requests": n_requests,
        "fleet_replicas": fleet_replicas,
        "cpu_count": os.cpu_count(),
        "harness_requests_per_sec": round(harness_rps, 1),
        "single_replica_requests_per_sec": round(single_rps, 1),
        "relative_throughput": round(single_rps / harness_rps, 2),
        "fleet_requests_per_sec": policies,
        "batching": {
            "batch_size": 8,
            "unbatched_requests_per_sec": round(unbatched_rps, 1),
            "batched_requests_per_sec": round(batched_rps, 1),
            "speedup": round(batched_rps / unbatched_rps, 2),
        },
        "note": (
            "relative_throughput = one-replica fleet rps / sequential "
            "ServingLoop rps on the same scenario and controller: both "
            "serve identical outcomes (tests/test_traces_arrivals.py), "
            "so the ratio is pure front-end overhead and transfers "
            "across machines.  batching.speedup = the same overloaded "
            "one-replica fleet at batch_size 8 vs 1 (one kernel decide "
            "per drained batch) — a ratio of two virtual-time runs, so "
            "it transfers too.  fleet_requests_per_sec is the "
            f"{fleet_replicas}-replica virtual-time rate per policy, "
            "absolute and machine-dependent."
        ),
    }


def _cell_plan(n_goals: int, n_inputs: int) -> list[RunSpec]:
    scenario = _scenario()
    key = ScenarioKey.for_scenario(scenario)
    assert key is not None
    goals = list(constraint_grid(scenario).min_energy_goals)
    stride = max(1, len(goals) // n_goals)
    subset = goals[::stride][:n_goals]
    return [
        RunSpec(scenario=key, goal=goal, scheme=name, n_inputs=n_inputs)
        for goal in subset
        for name in PLAN_SCHEMES
    ]


def bench_executor(
    n_goals: int, n_inputs: int, worker_counts=WORKER_COUNTS
) -> dict:
    """A table4-style cell plan across 1, 2, and 4 workers."""
    plan = _cell_plan(n_goals, n_inputs)
    chunk = len(PLAN_SCHEMES)
    timings: dict[str, dict] = {}
    base_seconds = None
    for workers in worker_counts:
        executor = RunExecutor(workers=workers, chunksize=chunk)
        executor.run_plan(plan)  # warm-up (pool spin-up, caches)
        elapsed = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            executor.run_plan(plan)
            elapsed = min(elapsed, time.perf_counter() - start)
        if base_seconds is None:
            base_seconds = elapsed
        usable = min(workers, os.cpu_count() or 1)
        timings[str(workers)] = {
            "seconds": round(elapsed, 4),
            "cells_per_sec": round(len(plan) / elapsed, 2),
            "speedup_vs_serial": round(base_seconds / elapsed, 2),
            "parallel_efficiency": round(base_seconds / elapsed / usable, 2),
        }
    return {
        "plan_cells": len(plan),
        "n_goals": n_goals,
        "schemes": list(PLAN_SCHEMES),
        "n_inputs": n_inputs,
        "cpu_count": os.cpu_count(),
        "workers": timings,
        "note": (
            "speedup is bounded by cpu_count; parallel_efficiency is "
            "speedup / min(workers, cpu_count), so near-linear scaling "
            "reads as efficiency near 1.0"
        ),
    }


def _sweep_spec(n_inputs: int, stride: int) -> SweepSpec:
    """The measured sweep: one grid-heavy Table-4 cell family.

    GPU/image with ``OracleStatic`` only and both objective families
    keeps the plan's serve work light relative to grid realisation —
    the duplicated work the store removes — so the store's effect is
    visible above scheduling noise even on small boxes.
    """
    return SweepSpec(
        platforms=("GPU",),
        tasks=("image",),
        envs=("memory",),
        schemes=("OracleStatic",),
        objectives=("min_energy", "min_error"),
        settings_stride=stride,
        n_inputs=n_inputs,
    )


def _sweep_worker(units, client, queue, barrier) -> None:
    """One dedicated bench worker: warm up, sync on the barrier, sweep.

    The warm-up executes the first unit at a throwaway input count —
    a *different* grid key, so no plan grid is pre-realised — which
    pays the per-process constants (scenario build, candidate space,
    numpy dispatch, and for store arms the registry handshake) outside
    the clock.  Both arms warm identically, so the measured window
    contains only the work the store can actually change: plan-grid
    realisation, publish/attach, and serving.
    """
    state = _WorkerState(grid_store=client)
    warm = dataclasses.replace(units[0], n_inputs=16)
    summarize_cell(warm.schemes, state.execute(warm.cell_spec()))
    barrier.wait()
    for unit in units:
        runs = state.execute(unit.cell_spec())
        summarize_cell(unit.schemes, runs)
    queue.put(len(units))


def _sweep_splits(units, workers: int):
    """The plan split each arm's dedicated worker processes execute.

    Two workers get an even/odd interleave — each half holds one cell
    of every timing — and the second half is *reversed*: without a
    store both processes realise every grid privately, with a store
    each grid is realised once fleet-wide and the publishes of one
    worker's front half overlap the other's attaches.  A dedicated
    fixed split — rather than a work-stealing pool — keeps the
    duplicated-realisation workload identical on every box, including
    single-core runners where a pool would let one worker drain the
    whole queue and hide the duplication being measured.
    """
    if workers == 1:
        return (list(units),)
    return (units[0::2], list(reversed(units[1::2])))


def _sweep_arm(splits, client) -> float:
    """Wall-clock of dedicated fresh processes executing the splits.

    Every arm — the one-worker arms included — runs in freshly forked
    children: executing units in the bench process itself would warm
    module-level state that later forked workers inherit, silently
    deflating the duplicated realisation cost the store arms exist to
    remove.  The clock runs from barrier release to the *last worker's
    completion message*: interpreter teardown (segment unmapping,
    tracker unregistration) stays outside, since a real sweep pool
    amortises worker lifetime over the whole plan, not per slice.
    """
    ctx = multiprocessing.get_context("fork")
    queue = ctx.SimpleQueue()
    barrier = ctx.Barrier(len(splits) + 1)
    procs = [
        ctx.Process(target=_sweep_worker, args=(split, client, queue, barrier))
        for split in splits
    ]
    for proc in procs:
        proc.start()
    barrier.wait()  # every worker is warmed; the clock sees only sweep work
    start = time.perf_counter()
    done = 0
    for _ in procs:
        done += queue.get()  # blocks until one worker finishes its split
    elapsed = time.perf_counter() - start
    for proc in procs:
        proc.join()
    total = sum(len(split) for split in splits)
    if done != total or any(proc.exitcode != 0 for proc in procs):
        raise RuntimeError("sweep bench worker failed")
    return elapsed


def _sweep_driver_rss(n_inputs: int, strides) -> dict:
    """Driver peak RSS per cell at two plan sizes (streaming claim).

    Each measurement runs ``run_sweep`` (summaries only — no
    ``keep_runs``) in a fresh subprocess and reads the child's own
    ``ru_maxrss``, so the parent's allocations cannot leak into the
    number.  The plan grows by shrinking the settings stride; flat
    ``kb_per_cell`` growth across a ≥4× cell-count jump is the
    streaming-aggregation property the sweep tests cannot see.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    points = []
    for stride in strides:
        code = (
            "import resource\n"
            "from repro.runtime.sweep import SweepSpec, run_sweep\n"
            "spec = SweepSpec(platforms=('CPU1',), tasks=('image',),"
            " envs=('memory',), schemes=('OracleStatic',),"
            " objectives=('min_energy', 'min_error'),"
            f" settings_stride={stride}, n_inputs={n_inputs})\n"
            "result = run_sweep(spec, workers=1)\n"
            "assert result.complete\n"
            "rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss\n"
            "print(len(result.cells), rss)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
        )
        cells, rss_kb = (int(v) for v in proc.stdout.split()[-2:])
        points.append(
            {
                "settings_stride": stride,
                "cells": cells,
                "peak_rss_kb": rss_kb,
                "kb_per_cell": round(rss_kb / cells, 1),
            }
        )
    small, large = points[0], points[-1]
    return {
        "n_inputs": n_inputs,
        "small": small,
        "large": large,
        "cells_growth": round(large["cells"] / small["cells"], 2),
        "rss_growth": round(
            large["peak_rss_kb"] / small["peak_rss_kb"], 2
        ),
        "note": (
            "each point is a fresh subprocess running run_sweep with "
            "summaries only; rss_growth far below cells_growth means "
            "driver memory is dominated by the interpreter + one "
            "working set, with O(cells) compact summaries on top — "
            "not O(inputs) retained runs"
        ),
    }


def bench_sweep(
    n_inputs: int,
    stride: int = 5,
    repeats: int = 3,
    rss_inputs: int | None = 60,
    rss_strides=(5, 1),
) -> dict:
    """Shared grid store vs. per-process caches, 1 and 2 workers."""
    spec = _sweep_spec(n_inputs, stride)
    units = compile_sweep(spec)
    # Segment-pool sizing for the store arms: byte size is a static
    # function of the plan's dimensions (shared_grid_layout), count is
    # the plan's distinct timings.  Preallocation happens per store,
    # outside the measured window — it is the sweep-startup cost a
    # resumable driver pays once, not steady-state cell work.
    n_configs = len(_WorkerState().space(units[0].scenario))
    _fields, grid_nbytes = shared_grid_layout(n_configs, n_inputs)
    n_grids = len({(u.goal.deadline_s, u.goal.period) for u in units})
    _sweep_arm(_sweep_splits(units, 1), None)  # warm-up (OS/page caches)
    timings = {
        (workers, shared): float("inf")
        for workers in (1, 2)
        for shared in (False, True)
    }
    store_stats = None
    # Interleave the arms inside each repeat (see bench_cross_scheme):
    # every measurement forks fresh worker processes — and, for the
    # store arms, builds a fresh store — because duplicated
    # realisation across fresh caches is exactly the effect under
    # measurement.
    for _ in range(repeats):
        for shared in (False, True):
            for workers in (1, 2):
                store = SharedGridStore() if shared else None
                try:
                    if store is not None:
                        store.preallocate(grid_nbytes, n_grids)
                    client = store.client() if store is not None else None
                    timings[(workers, shared)] = min(
                        timings[(workers, shared)],
                        _sweep_arm(_sweep_splits(units, workers), client),
                    )
                    if shared and workers == 2:
                        store_stats = store.stats()
                finally:
                    if store is not None:
                        store.close()
    worker_sections = {}
    for workers in (1, 2):
        cache_s = timings[(workers, False)]
        store_s = timings[(workers, True)]
        worker_sections[str(workers)] = {
            "cache_seconds": round(cache_s, 4),
            "store_seconds": round(store_s, 4),
            "cache_cells_per_sec": round(len(units) / cache_s, 2),
            "store_cells_per_sec": round(len(units) / store_s, 2),
            "store_speedup": round(cache_s / store_s, 2),
        }
    return {
        "plan_cells": len(units),
        "n_inputs": n_inputs,
        "settings_stride": stride,
        "schemes": list(spec.schemes),
        "cpu_count": os.cpu_count(),
        "workers": worker_sections,
        "store_stats": store_stats,
        "driver_rss": (
            _sweep_driver_rss(rss_inputs, rss_strides)
            if rss_inputs is not None
            else None
        ),
        "note": (
            "store_speedup compares the same balanced two-process plan "
            "split (each half holds one cell of every timing, second "
            "half reversed) with a SharedGridStore — first process to "
            "need a grid realises and publishes, the other attaches "
            "zero-copy — against per-process caches where both "
            "processes realise every grid privately.  Cells are "
            "bit-identical either way (tests/test_sweep_parity.py).  "
            "The win needs ≥2 workers: a single worker's cache already "
            "realises each grid exactly once, so workers.1 records the "
            "store's pure publish overhead, not a win."
        ),
    }


def run(
    n_inputs: int = 240,
    n_goals: int = 6,
    plan_inputs: int = 80,
    min_seconds: float = 1.0,
) -> dict:
    return {
        "benchmark": "harness_throughput",
        "platform": "CPU1",
        "task": "image",
        "serving": bench_serving(n_inputs, min_seconds),
        "cell_fusion": bench_cell_fusion(
            n_deadlines=3, n_floors=5, n_inputs=n_inputs, repeats=5
        ),
        "lockstep": bench_lockstep(
            n_deadlines=3, n_floors=5, n_inputs=n_inputs, repeats=5
        ),
        "cross_scheme": bench_cross_scheme(
            n_deadlines=3, n_floors=5, n_inputs=n_inputs, repeats=5
        ),
        "serving_frontend": bench_serving_frontend(
            n_requests=n_inputs, min_seconds=min_seconds
        ),
        "executor": bench_executor(n_goals, plan_inputs),
        "sweep": bench_sweep(n_inputs=1920, repeats=5),
    }


def quick_metrics(min_seconds: float = 0.1) -> dict:
    """A fast, reduced measurement with the committed JSON's shape.

    The CI bench-regression gate compares the *ratio* metrics of this
    against the committed ``BENCH_harness.json`` — ratios (batch vs
    sequential, fused vs unfused) are machine-relative, so they
    transfer across runner hardware where absolute throughput does
    not.
    """
    return {
        "serving": bench_serving(n_inputs=120, min_seconds=min_seconds),
        "cell_fusion": bench_cell_fusion(
            n_deadlines=3, n_floors=5, n_inputs=120, repeats=3
        ),
        # Also carries the decision-path health counters (stacked
        # batch sizes, memo hits) of the measured lockstep run, so the
        # smoke/CI artifact shows per-run scheduler health alongside
        # the gated ratio.
        "lockstep": bench_lockstep(
            n_deadlines=3, n_floors=5, n_inputs=120, repeats=3
        ),
        # The full-zoo cross-scheme ratio plus its decision-path
        # telemetry (cross_cells/cross_lanes/sequential_inputs), so
        # the CI artifact shows the fused cell's zero-per-input-Python
        # property alongside the gated speedup.
        "cross_scheme": bench_cross_scheme(
            n_deadlines=3, n_floors=5, n_inputs=120, repeats=3
        ),
        # The fleet front-end's event-loop overhead ratio (one-replica
        # fleet vs. the sequential harness serving identical outcomes).
        "serving_frontend": bench_serving_frontend(
            n_requests=120, min_seconds=min_seconds
        ),
        # Pool ratios are only compared when the measuring box's
        # cpu_count matches the committed artifact's (see
        # check_bench_regression.py) — a tiny plan keeps the spin-up
        # cheap on boxes where the comparison will be skipped anyway.
        "executor": bench_executor(
            n_goals=2, n_inputs=30, worker_counts=(1, 2)
        ),
        # The store ratio needs the committed plan size: the effect is
        # duplicated grid *realisation*, whose share of the cell cost
        # grows with n_inputs, so a smaller quick plan would measure a
        # structurally different (smaller) ratio than the artifact's.
        # Like the executor pool ratios it is only compared on a box
        # whose cpu_count matches the committed artifact.  The RSS
        # subprocess points are skipped — they carry no gated ratio.
        "sweep": bench_sweep(n_inputs=1920, repeats=3, rss_inputs=None),
    }


def smoke() -> None:
    """Seconds-scale end-to-end exercise of every bench path (for CI)."""
    serving = bench_serving(n_inputs=20, min_seconds=0.05)
    assert set(serving["schemes"]) == set(FEEDBACK_FREE_SCHEMES)
    fusion = bench_cell_fusion(
        n_deadlines=1, n_floors=2, n_inputs=10, repeats=1
    )
    assert fusion["n_goals"] == 2
    assert set(fusion["feedback_free"]["schemes"]) == set(FEEDBACK_FREE_SCHEMES)
    lockstep = bench_lockstep(
        n_deadlines=1, n_floors=2, n_inputs=10, repeats=1
    )
    assert lockstep["n_goals"] == 2
    assert lockstep["decision_path"]["lockstep_runs"] > 0
    cross = bench_cross_scheme(
        n_deadlines=1, n_floors=2, n_inputs=10, repeats=1
    )
    assert cross["n_goals"] == 2
    assert cross["decision_path"]["sequential_inputs"] == 0
    assert cross["decision_path"]["cross_cells"] >= 1
    frontend = bench_serving_frontend(n_requests=15, min_seconds=0.05)
    assert frontend["relative_throughput"] > 0
    assert set(frontend["fleet_requests_per_sec"]) == set(POLICY_KINDS)
    assert frontend["batching"]["speedup"] > 0
    executor = bench_executor(
        n_goals=2, n_inputs=10, worker_counts=(1, 2)
    )
    assert executor["plan_cells"] == 2 * len(PLAN_SCHEMES)
    sweep = bench_sweep(
        n_inputs=40, stride=9, repeats=1, rss_inputs=10, rss_strides=(9, 3)
    )
    assert sweep["plan_cells"] == 8
    assert set(sweep["workers"]) == {"1", "2"}
    assert sweep["workers"]["2"]["store_speedup"] > 0
    assert sweep["store_stats"]["grids"] > 0
    assert sweep["store_stats"]["failed"] == 0
    assert sweep["driver_rss"]["large"]["cells"] > sweep["driver_rss"][
        "small"
    ]["cells"]
    print("bench_harness_throughput smoke ok")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run exercising every path; writes no JSON",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
        return
    result = run()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if result["serving"]["min_speedup"] < 5.0:
        print("WARNING: batch serving path below the 5x target")
    if result["cell_fusion"]["feedback_free"]["speedup"] < 2.0:
        print("WARNING: fused feedback-free cells below the 2x target")
    if result["lockstep"]["speedup"] < 1.5:
        print("WARNING: lockstep full-zoo cells below the 1.5x target")
    # Cross-scheme and per-scheme lockstep run the same per-lane fast
    # path — cross only *removes* repeated column resolution — so the
    # true ratio is >= 1.0 with a few percent of measurement noise on
    # top (interleaved best-of-N bounds it, it cannot eliminate it).
    # Warn only when the gap exceeds that noise band.
    if result["cross_scheme"]["speedup"] < 0.95:
        print("WARNING: cross-scheme fused cells slower than per-scheme")
    if result["cell_fusion"]["table4"]["speedup"] < 3.0:
        print("WARNING: fused table4 cells below the 3x target")
    if result["serving_frontend"]["relative_throughput"] < 0.5:
        print("WARNING: fleet front-end overhead above 2x the harness")
    if result["sweep"]["workers"]["2"]["store_speedup"] < 1.5:
        print("WARNING: shared grid store below the 1.5x two-worker target")
    if result["sweep"]["driver_rss"]["rss_growth"] > 1.5:
        print("WARNING: driver peak RSS not flat across the cell-count jump")


if __name__ == "__main__":
    main()
