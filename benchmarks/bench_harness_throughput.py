"""Harness throughput: serving, cell fusion, lockstep, multi-worker.

Four layers of the spec → executor → loop stack are measured on the
Table 4 image scenario (CPU1, default environment):

* **Serving loop** — for each feedback-free scheme (Oracle with a
  precomputed grid, OracleStatic, App-only), one run served by the
  sequential per-input round trip (``batch=False``) versus the batch
  fast path (``batch=True``), in inputs/second.
* **Cell fusion** — whole (goal × scheme) cells evaluated by
  :func:`repro.experiments.harness.evaluate_schemes` with
  ``fuse_cells=True`` (one outcome grid per timing serving every
  scheme through a trusted grid view) versus ``fuse_cells=False``
  (the PR 3 path: isolated per-run realisations), in cells/second —
  once for the feedback-free scheme subset and once for the full
  Table 4 zoo.  Fused results are bit-identical to unfused, so this
  too is purely a wall-clock measurement.
* **Lockstep** — the full Table 4 zoo over a Table-3-shaped goal grid,
  fused with the lockstep multi-goal decision engine
  (``lockstep=True``: every ALERT-family and Sys-only scheme advances
  all goals together, one stacked estimator/selector pass per input)
  versus the PR 4 fused per-goal path (``lockstep=False``).  Results
  are value-identical (``tests/test_lockstep_parity.py``); the section
  also records the decision-path health counters (stacked batch
  sizes, memo hit rates) from
  :data:`repro.runtime.loop.LOCKSTEP_TELEMETRY`.
* **Cross-scheme** — the *full* Table 4 zoo (all nine schemes,
  oracles included) over a 3×5 goal grid, fused + lockstep with
  ``cross_scheme=True`` (every stacking scheme advances the input
  stream as a lane of one
  :class:`repro.runtime.loop.CrossSchemeLockstepLoop`, sharing the
  per-input grid reads; records realised goal-major after the run)
  versus ``cross_scheme=False`` (the PR 5 per-scheme lockstep cells).
  Results are value-identical (``tests/test_cross_scheme_parity.py``);
  the section records the cross-scheme decision-path counters
  (``cross_cells``/``cross_lanes``/``sequential_inputs``) so the
  zero-per-input-Python property is visible in the artifact.
* **Serving front-end** — the open-loop fleet (:mod:`repro.serve`)
  against the sequential harness: a one-replica fleet serves the same
  outcomes through the virtual-time event loop, so the ratio isolates
  the front-end's per-request overhead; multi-replica per-policy rates
  ride along as absolute context.
* **Run executor** — a table4-style cell plan (constraint-grid goals ×
  schemes, ALERT included so the plan carries real feedback work)
  executed by :class:`repro.runtime.executor.RunExecutor` with 1, 2,
  and 4 workers, in cells/second.  Parallel results are bit-identical
  to serial, so this is purely a wall-clock measurement; speedup is
  bounded by the machine's core count, which is recorded alongside
  (``parallel_efficiency`` is speedup divided by usable workers —
  near 1.0 means near-linear scaling up to that worker count).

Every section records the measuring box's ``cpu_count``: ratio
metrics transfer across machines, but the executor's pool ratios do
not, so the CI gate compares those only when the committed artifact
was written on a box with the same core count.

Results land in ``BENCH_harness.json`` at the repository root so the
harness-path performance trajectory is tracked from PR to PR.  Run
directly (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_harness_throughput.py
    PYTHONPATH=src python benchmarks/bench_harness_throughput.py --smoke

``--smoke`` runs a seconds-scale miniature of every measurement and
writes nothing — CI invokes it so the script cannot rot.  The CI
bench-regression gate additionally calls :func:`quick_metrics` and
compares the machine-relative speedup ratios against the committed
baseline (see ``benchmarks/README.md``).

The file is named ``bench_*`` on purpose: the tier-1 pytest run only
collects ``test_*`` files, so this never slows the test gate.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.baselines import make_alert
from repro.core.goals import Goal, ObjectiveKind
from repro.experiments.harness import SCHEMES, evaluate_schemes, make_scheme
from repro.runtime.executor import (
    RunExecutor,
    RunSpec,
    ScenarioKey,
    timing_grid,
)
from repro.runtime.loop import LOCKSTEP_TELEMETRY, ServingLoop
from repro.serve import FleetFrontend, Replica, make_policy
from repro.serve.policies import POLICY_KINDS
from repro.workloads.scenarios import build_scenario, constraint_grid
from repro.workloads.traces import make_arrivals

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_harness.json"

FEEDBACK_FREE_SCHEMES = ("Oracle", "OracleStatic", "App-only")
TABLE4_SCHEMES = (
    "ALERT",
    "ALERT-Any",
    "Sys-only",
    "App-only",
    "No-coord",
    "Oracle",
    "OracleStatic",
)
PLAN_SCHEMES = ("ALERT", "Oracle", "OracleStatic", "App-only")
WORKER_COUNTS = (1, 2, 4)


def _repeat(fn, min_seconds: float) -> tuple[int, float]:
    """(repetitions, elapsed seconds) of ``fn`` over at least a window."""
    fn()  # warm-up outside the clock
    count = 0
    start = time.perf_counter()
    while time.perf_counter() - start < min_seconds:
        fn()
        count += 1
    return count, time.perf_counter() - start


def _best_rate(fn, units: int, min_seconds: float, windows: int = 3) -> float:
    """Best units/second over several windows (robust to noise spikes)."""
    best = 0.0
    for _ in range(windows):
        reps, elapsed = _repeat(fn, min_seconds)
        best = max(best, reps * units / elapsed)
    return best


def _scenario(seed: int = 20200501):
    return build_scenario("CPU1", "image", "default", "standard", seed=seed)


def bench_serving(n_inputs: int, min_seconds: float) -> dict:
    """Sequential loop vs. batch fast path, per feedback-free scheme."""
    scenario = _scenario()
    goal = Goal(
        objective=ObjectiveKind.MINIMIZE_ENERGY,
        deadline_s=scenario.anchor_latency_s(),
        accuracy_min=0.9,
    )
    # The harness always shares the per-timing outcome grid with the
    # oracles; serve them the same way here.
    grid = timing_grid(scenario, goal, n_inputs)
    schemes: dict = {}
    for name in FEEDBACK_FREE_SCHEMES:
        engine = scenario.make_engine()
        stream = scenario.make_stream()
        scheduler = make_scheme(
            name, scenario, engine, stream, goal, n_inputs, oracle_grid=grid
        )
        loop = ServingLoop(engine, stream, scheduler, goal)

        sequential_ips = _best_rate(
            lambda: loop.run(n_inputs, batch=False), n_inputs, min_seconds
        )
        batch_ips = _best_rate(
            lambda: loop.run(n_inputs, batch=True), n_inputs, min_seconds
        )
        schemes[name] = {
            "sequential_inputs_per_sec": round(sequential_ips, 1),
            "batch_inputs_per_sec": round(batch_ips, 1),
            "speedup": round(batch_ips / sequential_ips, 2),
        }
    return {
        "n_inputs": n_inputs,
        "cpu_count": os.cpu_count(),
        "schemes": schemes,
        "min_speedup": min(entry["speedup"] for entry in schemes.values()),
    }


def _table3_goals(scenario, n_deadlines: int, n_floors: int) -> list[Goal]:
    """A Table-3-shaped constraint subset: floors nested per deadline.

    This is the shape real cells have (35 settings = 7 deadlines × 5
    accuracy floors), so goals sharing a timing — and therefore one
    outcome grid — appear in realistic proportion.
    """
    goals = list(constraint_grid(scenario).min_energy_goals)
    deadlines: dict[float, list[Goal]] = {}
    for goal in goals:
        deadlines.setdefault(goal.deadline_s, []).append(goal)
    subset: list[Goal] = []
    for deadline in sorted(deadlines)[:n_deadlines]:
        subset.extend(deadlines[deadline][:n_floors])
    return subset


def bench_cell_fusion(
    n_deadlines: int, n_floors: int, n_inputs: int, repeats: int = 3
) -> dict:
    """Fused vs. unfused whole-cell evaluation, per scheme subset."""
    scenario = _scenario()
    goals = _table3_goals(scenario, n_deadlines, n_floors)
    sections: dict = {}
    for label, schemes in (
        ("feedback_free", FEEDBACK_FREE_SCHEMES),
        ("table4", TABLE4_SCHEMES),
    ):
        timings = {}
        for fused in (True, False):
            evaluate_schemes(
                scenario, goals, schemes, n_inputs=n_inputs, fuse_cells=fused
            )  # warm-up (grids, profiles, memos)
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                evaluate_schemes(
                    scenario, goals, schemes, n_inputs=n_inputs,
                    fuse_cells=fused,
                )
                best = min(best, time.perf_counter() - start)
            timings[fused] = best
        sections[label] = {
            "schemes": list(schemes),
            "fused_seconds": round(timings[True], 4),
            "unfused_seconds": round(timings[False], 4),
            "fused_cells_per_sec": round(len(goals) / timings[True], 2),
            "unfused_cells_per_sec": round(len(goals) / timings[False], 2),
            "speedup": round(timings[False] / timings[True], 2),
        }
    return {
        "n_goals": len(goals),
        "n_deadlines": n_deadlines,
        "n_floors": n_floors,
        "n_inputs": n_inputs,
        "cpu_count": os.cpu_count(),
        "feedback_free": sections["feedback_free"],
        "table4": sections["table4"],
        "note": (
            "fused = evaluate_schemes(fuse_cells=True): one outcome grid "
            "per timing serves every scheme of the cell; unfused is the "
            "PR 3 isolated-run path.  Results are bit-identical "
            "(tests/test_cell_fusion_parity.py); speedup is wall-clock."
        ),
    }


def bench_lockstep(
    n_deadlines: int, n_floors: int, n_inputs: int, repeats: int = 3
) -> dict:
    """Fused+lockstep vs. fused per-goal, full Table 4 zoo cell."""
    scenario = _scenario()
    goals = _table3_goals(scenario, n_deadlines, n_floors)
    timings = {}
    telemetry = None
    for lockstep in (True, False):
        evaluate_schemes(
            scenario, goals, TABLE4_SCHEMES, n_inputs=n_inputs,
            fuse_cells=True, lockstep=lockstep,
        )  # warm-up (grids, profiles, memos)
        best = float("inf")
        for _ in range(repeats):
            LOCKSTEP_TELEMETRY.reset()
            start = time.perf_counter()
            evaluate_schemes(
                scenario, goals, TABLE4_SCHEMES, n_inputs=n_inputs,
                fuse_cells=True, lockstep=lockstep,
            )
            best = min(best, time.perf_counter() - start)
            if lockstep:
                telemetry = LOCKSTEP_TELEMETRY.snapshot()
        timings[lockstep] = best
    return {
        "n_goals": len(goals),
        "n_deadlines": n_deadlines,
        "n_floors": n_floors,
        "n_inputs": n_inputs,
        "cpu_count": os.cpu_count(),
        "schemes": list(TABLE4_SCHEMES),
        "lockstep_seconds": round(timings[True], 4),
        "per_goal_seconds": round(timings[False], 4),
        "lockstep_cells_per_sec": round(len(goals) / timings[True], 2),
        "per_goal_cells_per_sec": round(len(goals) / timings[False], 2),
        "speedup": round(timings[False] / timings[True], 2),
        "decision_path": telemetry,
        "note": (
            "lockstep = evaluate_schemes(fuse_cells=True, lockstep=True): "
            "ALERT-family and Sys-only runs advance the whole goal grid "
            "together, one stacked estimator/selector pass per input "
            "step; per_goal is the PR 4 fused path (lockstep=False).  "
            "Results are value-identical "
            "(tests/test_lockstep_parity.py); decision_path holds the "
            "stacked batch-size and memo counters of the measured run."
        ),
    }


def bench_cross_scheme(
    n_deadlines: int, n_floors: int, n_inputs: int, repeats: int = 3
) -> dict:
    """Cross-scheme fused cells vs. per-scheme lockstep, full zoo."""
    scenario = _scenario()
    goals = _table3_goals(scenario, n_deadlines, n_floors)
    timings = {True: float("inf"), False: float("inf")}
    telemetry = None
    for cross in (True, False):
        evaluate_schemes(
            scenario, goals, SCHEMES, n_inputs=n_inputs,
            fuse_cells=True, lockstep=True, cross_scheme=cross,
        )  # warm-up (grids, profiles, memos)
    # Interleave the two modes inside each repeat: the paths are close
    # enough (~5%) that measuring one mode's whole block first lets
    # clock/load drift masquerade as a speedup (or slowdown) on noisy
    # single-core runners; alternating exposes both modes to the same
    # drift and best-of-``repeats`` does the rest.
    for _ in range(repeats):
        for cross in (False, True):
            LOCKSTEP_TELEMETRY.reset()
            start = time.perf_counter()
            evaluate_schemes(
                scenario, goals, SCHEMES, n_inputs=n_inputs,
                fuse_cells=True, lockstep=True, cross_scheme=cross,
            )
            timings[cross] = min(
                timings[cross], time.perf_counter() - start
            )
            if cross:
                telemetry = LOCKSTEP_TELEMETRY.snapshot()
    return {
        "n_goals": len(goals),
        "n_deadlines": n_deadlines,
        "n_floors": n_floors,
        "n_inputs": n_inputs,
        "cpu_count": os.cpu_count(),
        "schemes": list(SCHEMES),
        "cross_seconds": round(timings[True], 4),
        "per_scheme_seconds": round(timings[False], 4),
        "cross_cells_per_sec": round(len(goals) / timings[True], 2),
        "per_scheme_cells_per_sec": round(len(goals) / timings[False], 2),
        "speedup": round(timings[False] / timings[True], 2),
        "decision_path": telemetry,
        "note": (
            "cross = evaluate_schemes(cross_scheme=True): all stacking "
            "schemes of the cell (ALERT family, Sys-only, No-coord) step "
            "the input stream together as lanes of one "
            "CrossSchemeLockstepLoop, sharing the per-input grid reads; "
            "per_scheme is the PR 5 lockstep path (cross_scheme=False).  "
            "Results are value-identical "
            "(tests/test_cross_scheme_parity.py); decision_path shows "
            "sequential_inputs=0 — zero per-input Python decide/observe "
            "calls for the stacked schemes."
        ),
    }


def bench_serving_frontend(
    n_requests: int, min_seconds: float, fleet_replicas: int = 4
) -> dict:
    """Event-loop fleet vs. the sequential closed-loop harness.

    The gated ratio is the apples-to-apples one: a *one-replica* fleet
    performs exactly the harness's engine/controller work per request
    (the parity test pins the outcomes bit-identical), so
    ``relative_throughput`` isolates the virtual-time event-loop
    overhead of the front-end — arrival events, admission, dispatch,
    completion callbacks.  The multi-replica per-policy rates are
    informational (absolute, machine-dependent).
    """
    scenario = _scenario()
    profile = scenario.profile()
    anchor = scenario.anchor_latency_s()
    goal = Goal(
        objective=ObjectiveKind.MINIMIZE_ENERGY,
        deadline_s=1.25 * anchor,
        accuracy_min=0.9,
    )

    def harness_once():
        ServingLoop(
            scenario.make_engine(), scenario.make_stream(),
            make_alert(profile), goal,
        ).run(n_requests, batch=False)

    def fleet_once(n_replicas: int, policy: str):
        lanes = [
            Replica(i, scenario.make_engine(), make_alert(profile), None, None)
            for i in range(n_replicas)
        ]
        FleetFrontend(
            lanes,
            make_arrivals("poisson", 0.7 * n_replicas / anchor, seed=7),
            scenario.make_stream(),
            goal,
            make_policy(policy),
        ).run_requests(n_requests)

    harness_rps = _best_rate(harness_once, n_requests, min_seconds)
    single_rps = _best_rate(
        lambda: fleet_once(1, "round-robin"), n_requests, min_seconds
    )
    policies = {
        policy: round(
            _best_rate(
                lambda: fleet_once(fleet_replicas, policy),
                n_requests,
                min_seconds,
            ),
            1,
        )
        for policy in POLICY_KINDS
    }
    return {
        "n_requests": n_requests,
        "fleet_replicas": fleet_replicas,
        "cpu_count": os.cpu_count(),
        "harness_requests_per_sec": round(harness_rps, 1),
        "single_replica_requests_per_sec": round(single_rps, 1),
        "relative_throughput": round(single_rps / harness_rps, 2),
        "fleet_requests_per_sec": policies,
        "note": (
            "relative_throughput = one-replica fleet rps / sequential "
            "ServingLoop rps on the same scenario and controller: both "
            "serve identical outcomes (tests/test_traces_arrivals.py), "
            "so the ratio is pure front-end overhead and transfers "
            "across machines.  fleet_requests_per_sec is the "
            f"{fleet_replicas}-replica virtual-time rate per policy, "
            "absolute and machine-dependent."
        ),
    }


def _cell_plan(n_goals: int, n_inputs: int) -> list[RunSpec]:
    scenario = _scenario()
    key = ScenarioKey.for_scenario(scenario)
    assert key is not None
    goals = list(constraint_grid(scenario).min_energy_goals)
    stride = max(1, len(goals) // n_goals)
    subset = goals[::stride][:n_goals]
    return [
        RunSpec(scenario=key, goal=goal, scheme=name, n_inputs=n_inputs)
        for goal in subset
        for name in PLAN_SCHEMES
    ]


def bench_executor(
    n_goals: int, n_inputs: int, worker_counts=WORKER_COUNTS
) -> dict:
    """A table4-style cell plan across 1, 2, and 4 workers."""
    plan = _cell_plan(n_goals, n_inputs)
    chunk = len(PLAN_SCHEMES)
    timings: dict[str, dict] = {}
    base_seconds = None
    for workers in worker_counts:
        executor = RunExecutor(workers=workers, chunksize=chunk)
        executor.run_plan(plan)  # warm-up (pool spin-up, caches)
        elapsed = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            executor.run_plan(plan)
            elapsed = min(elapsed, time.perf_counter() - start)
        if base_seconds is None:
            base_seconds = elapsed
        usable = min(workers, os.cpu_count() or 1)
        timings[str(workers)] = {
            "seconds": round(elapsed, 4),
            "cells_per_sec": round(len(plan) / elapsed, 2),
            "speedup_vs_serial": round(base_seconds / elapsed, 2),
            "parallel_efficiency": round(base_seconds / elapsed / usable, 2),
        }
    return {
        "plan_cells": len(plan),
        "n_goals": n_goals,
        "schemes": list(PLAN_SCHEMES),
        "n_inputs": n_inputs,
        "cpu_count": os.cpu_count(),
        "workers": timings,
        "note": (
            "speedup is bounded by cpu_count; parallel_efficiency is "
            "speedup / min(workers, cpu_count), so near-linear scaling "
            "reads as efficiency near 1.0"
        ),
    }


def run(
    n_inputs: int = 240,
    n_goals: int = 6,
    plan_inputs: int = 80,
    min_seconds: float = 1.0,
) -> dict:
    return {
        "benchmark": "harness_throughput",
        "platform": "CPU1",
        "task": "image",
        "serving": bench_serving(n_inputs, min_seconds),
        "cell_fusion": bench_cell_fusion(
            n_deadlines=3, n_floors=5, n_inputs=n_inputs, repeats=5
        ),
        "lockstep": bench_lockstep(
            n_deadlines=3, n_floors=5, n_inputs=n_inputs, repeats=5
        ),
        "cross_scheme": bench_cross_scheme(
            n_deadlines=3, n_floors=5, n_inputs=n_inputs, repeats=5
        ),
        "serving_frontend": bench_serving_frontend(
            n_requests=n_inputs, min_seconds=min_seconds
        ),
        "executor": bench_executor(n_goals, plan_inputs),
    }


def quick_metrics(min_seconds: float = 0.1) -> dict:
    """A fast, reduced measurement with the committed JSON's shape.

    The CI bench-regression gate compares the *ratio* metrics of this
    against the committed ``BENCH_harness.json`` — ratios (batch vs
    sequential, fused vs unfused) are machine-relative, so they
    transfer across runner hardware where absolute throughput does
    not.
    """
    return {
        "serving": bench_serving(n_inputs=120, min_seconds=min_seconds),
        "cell_fusion": bench_cell_fusion(
            n_deadlines=3, n_floors=5, n_inputs=120, repeats=3
        ),
        # Also carries the decision-path health counters (stacked
        # batch sizes, memo hits) of the measured lockstep run, so the
        # smoke/CI artifact shows per-run scheduler health alongside
        # the gated ratio.
        "lockstep": bench_lockstep(
            n_deadlines=3, n_floors=5, n_inputs=120, repeats=3
        ),
        # The full-zoo cross-scheme ratio plus its decision-path
        # telemetry (cross_cells/cross_lanes/sequential_inputs), so
        # the CI artifact shows the fused cell's zero-per-input-Python
        # property alongside the gated speedup.
        "cross_scheme": bench_cross_scheme(
            n_deadlines=3, n_floors=5, n_inputs=120, repeats=3
        ),
        # The fleet front-end's event-loop overhead ratio (one-replica
        # fleet vs. the sequential harness serving identical outcomes).
        "serving_frontend": bench_serving_frontend(
            n_requests=120, min_seconds=min_seconds
        ),
        # Pool ratios are only compared when the measuring box's
        # cpu_count matches the committed artifact's (see
        # check_bench_regression.py) — a tiny plan keeps the spin-up
        # cheap on boxes where the comparison will be skipped anyway.
        "executor": bench_executor(
            n_goals=2, n_inputs=30, worker_counts=(1, 2)
        ),
    }


def smoke() -> None:
    """Seconds-scale end-to-end exercise of every bench path (for CI)."""
    serving = bench_serving(n_inputs=20, min_seconds=0.05)
    assert set(serving["schemes"]) == set(FEEDBACK_FREE_SCHEMES)
    fusion = bench_cell_fusion(
        n_deadlines=1, n_floors=2, n_inputs=10, repeats=1
    )
    assert fusion["n_goals"] == 2
    assert set(fusion["feedback_free"]["schemes"]) == set(FEEDBACK_FREE_SCHEMES)
    lockstep = bench_lockstep(
        n_deadlines=1, n_floors=2, n_inputs=10, repeats=1
    )
    assert lockstep["n_goals"] == 2
    assert lockstep["decision_path"]["lockstep_runs"] > 0
    cross = bench_cross_scheme(
        n_deadlines=1, n_floors=2, n_inputs=10, repeats=1
    )
    assert cross["n_goals"] == 2
    assert cross["decision_path"]["sequential_inputs"] == 0
    assert cross["decision_path"]["cross_cells"] >= 1
    frontend = bench_serving_frontend(n_requests=15, min_seconds=0.05)
    assert frontend["relative_throughput"] > 0
    assert set(frontend["fleet_requests_per_sec"]) == set(POLICY_KINDS)
    executor = bench_executor(
        n_goals=2, n_inputs=10, worker_counts=(1, 2)
    )
    assert executor["plan_cells"] == 2 * len(PLAN_SCHEMES)
    print("bench_harness_throughput smoke ok")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run exercising every path; writes no JSON",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
        return
    result = run()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if result["serving"]["min_speedup"] < 5.0:
        print("WARNING: batch serving path below the 5x target")
    if result["cell_fusion"]["feedback_free"]["speedup"] < 2.0:
        print("WARNING: fused feedback-free cells below the 2x target")
    if result["lockstep"]["speedup"] < 1.5:
        print("WARNING: lockstep full-zoo cells below the 1.5x target")
    # Cross-scheme and per-scheme lockstep run the same per-lane fast
    # path — cross only *removes* repeated column resolution — so the
    # true ratio is >= 1.0 with a few percent of measurement noise on
    # top (interleaved best-of-N bounds it, it cannot eliminate it).
    # Warn only when the gap exceeds that noise band.
    if result["cross_scheme"]["speedup"] < 0.95:
        print("WARNING: cross-scheme fused cells slower than per-scheme")
    if result["cell_fusion"]["table4"]["speedup"] < 3.0:
        print("WARNING: fused table4 cells below the 3x target")
    if result["serving_frontend"]["relative_throughput"] < 0.5:
        print("WARNING: fleet front-end overhead above 2x the harness")


if __name__ == "__main__":
    main()
