"""Bench: regenerate Figure 10 (ALERT vs the mean-only ALERT*)."""

from __future__ import annotations

from repro.experiments import fig10_alert_star


def test_fig10(once):
    result = once(
        fig10_alert_star.run,
        envs=("default", "memory"),
        candidate_sets=("standard", "trad", "any"),
        settings_stride=6,
        n_inputs=80,
    )
    # Paper: "ALERT (blue circles) always performs better than ALERT*".
    for env in ("default", "memory"):
        for candidate_set in ("standard", "trad", "any"):
            assert result.advantage(candidate_set, env) > -1.0
    # The advantage is substantial when traditional networks are in
    # the candidate set (their step-function accuracy needs the
    # distribution, not the mean).
    assert result.advantage("standard", "memory") > 10.0
    assert result.advantage("trad", "memory") > 10.0
    # Perplexities land in a plausible PTB range.
    bar = result.bar("ALERT", "standard", "default")
    assert 75.0 < bar.mean_perplexity < 300.0
