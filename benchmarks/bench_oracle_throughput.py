"""Oracle grid throughput: scalar reference vs. vectorized batch path.

The oracles are built "by running 90 inputs in all possible DNN and
system configurations" (paper Section 5.1); this bench measures that
grid evaluation on the Table 4 candidate set (the full image family
plus the anytime ladder across every CPU1 power level) three ways:

* raw (configuration × input) outcome evaluations/second —
  ``engine.evaluate`` per pair vs. one ``evaluate_batch`` pass;
* ``best_static_config`` wall time, scalar vs. batch;
* per-input ``OracleScheduler`` decisions/second, scalar vs. batch.

Results land in ``BENCH_oracle.json`` at the repository root so the
oracle-path performance trajectory is tracked from PR to PR.  Run
directly (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_oracle_throughput.py
    PYTHONPATH=src python benchmarks/bench_oracle_throughput.py --smoke

``--smoke`` runs a seconds-scale miniature and writes nothing — CI
invokes it so the script cannot rot, and the bench-regression gate
reuses :func:`run` with a short window to compare the measured
speedup ratios against the committed baseline (ratios are
machine-relative, so they transfer across runner hardware).

The file is named ``bench_*`` on purpose: the tier-1 pytest run only
collects ``test_*`` files, so this never slows the test gate.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.baselines.oracle import OracleScheduler, best_static_config
from repro.core.config_space import ConfigurationSpace
from repro.core.goals import Goal, ObjectiveKind
from repro.workloads.scenarios import build_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_oracle.json"

#: The paper's oracle horizon.
N_INPUTS = 90


def _repeat(fn, min_seconds: float) -> tuple[int, float]:
    """(repetitions, elapsed seconds) of ``fn`` over at least a window."""
    fn()  # warm-up outside the clock
    count = 0
    start = time.perf_counter()
    while time.perf_counter() - start < min_seconds:
        fn()
        count += 1
    return count, time.perf_counter() - start


def run(min_seconds: float = 1.5) -> dict:
    scenario = build_scenario("CPU1", "image", "default", "standard", seed=20200501)
    profile = scenario.profile()
    space = ConfigurationSpace(
        list(scenario.candidates.models), list(profile.powers)
    )
    configs = list(space)
    engine = scenario.make_engine()
    stream = scenario.make_stream()
    work_factors = [stream.item(i).work_factor for i in range(N_INPUTS)]
    goal = Goal(
        objective=ObjectiveKind.MINIMIZE_ENERGY,
        deadline_s=scenario.anchor_latency_s(),
        accuracy_min=0.9,
    )
    n_pairs = len(configs) * N_INPUTS

    # Raw grid evaluation: every configuration on every input.
    def scalar_grid():
        for config in configs:
            for index in range(N_INPUTS):
                engine.evaluate(
                    model=config.model,
                    power_cap_w=config.power_w,
                    index=index,
                    deadline_s=goal.deadline_s,
                    period_s=goal.period,
                    work_factor=work_factors[index],
                    rung_cap=config.rung_cap,
                )

    def batch_grid():
        engine.evaluate_batch(
            configs,
            range(N_INPUTS),
            deadline_s=goal.deadline_s,
            period_s=goal.period,
            work_factors=work_factors,
        )

    reps, elapsed = _repeat(scalar_grid, min_seconds)
    scalar_eps = reps * n_pairs / elapsed
    reps, elapsed = _repeat(batch_grid, min_seconds)
    batch_eps = reps * n_pairs / elapsed

    # OracleStatic: the whole-horizon best configuration.
    def static(use_batch: bool):
        best_static_config(
            engine, space, goal, stream, N_INPUTS, use_batch=use_batch
        )

    reps, elapsed = _repeat(lambda: static(False), min_seconds)
    static_scalar_s = elapsed / reps
    reps, elapsed = _repeat(lambda: static(True), min_seconds)
    static_batch_s = elapsed / reps

    # Oracle: per-input decisions (no precomputed grid — the serving
    # loop's fallback path).
    oracle = OracleScheduler(engine, space)
    items = [stream.item(i) for i in range(N_INPUTS)]

    def decisions(decide):
        for item in items:
            decide(item, goal)

    reps, elapsed = _repeat(lambda: decisions(oracle.decide_scalar), min_seconds)
    decide_scalar_dps = reps * N_INPUTS / elapsed
    reps, elapsed = _repeat(lambda: decisions(oracle.decide), min_seconds)
    decide_batch_dps = reps * N_INPUTS / elapsed

    combined_scalar_s = static_scalar_s + N_INPUTS / decide_scalar_dps
    combined_batch_s = static_batch_s + N_INPUTS / decide_batch_dps
    return {
        "benchmark": "oracle_throughput",
        "platform": "CPU1",
        "candidate_set": "table4_image",
        "n_configs": len(configs),
        "n_inputs": N_INPUTS,
        "grid_scalar_evals_per_sec": round(scalar_eps, 1),
        "grid_batch_evals_per_sec": round(batch_eps, 1),
        "grid_speedup": round(batch_eps / scalar_eps, 2),
        "static_scalar_seconds": round(static_scalar_s, 5),
        "static_batch_seconds": round(static_batch_s, 5),
        "static_speedup": round(static_scalar_s / static_batch_s, 2),
        "oracle_scalar_decisions_per_sec": round(decide_scalar_dps, 1),
        "oracle_batch_decisions_per_sec": round(decide_batch_dps, 1),
        "decide_speedup": round(decide_batch_dps / decide_scalar_dps, 2),
        # best_static_config + the OracleScheduler horizon, end to end.
        "speedup": round(combined_scalar_s / combined_batch_s, 2),
    }


def smoke() -> None:
    """Seconds-scale end-to-end exercise of every path (for CI)."""
    result = run(min_seconds=0.05)
    assert result["speedup"] > 0
    print("bench_oracle_throughput smoke ok")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run exercising every path; writes no JSON",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
        return
    result = run()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if result["speedup"] < 5.0:
        print("WARNING: batch oracle path below the 5x target")


if __name__ == "__main__":
    main()
