"""Bench: regenerate Figure 9 (the contention-burst trace)."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig09_trace


def test_fig09(once):
    result = once(fig09_trace.run, n_inputs=160)
    alert = result.alert
    trad = result.alert_trad
    start, stop = result.contention_start, result.contention_stop

    # Quiet prefix: both runs use the big traditional network.
    assert alert.model[20].startswith("sparse_resnet50")
    assert trad.model[20].startswith("sparse_resnet50")

    # Both adapt during contention: the belief tracks the slowdown.
    assert np.mean(alert.xi_mean[start + 10 : stop]) > 1.3
    # ALERT can and does reach for the anytime network in the window;
    # ALERT-Trad cannot (no anytime candidate).
    window_share = float(np.mean(alert.is_anytime[start + 5 : stop]))
    prefix_share = float(np.mean(alert.is_anytime[:start]))
    assert window_share >= prefix_share
    assert not any(trad.is_anytime)

    # ALERT's accuracy through the window matches or beats ALERT-Trad.
    assert result.window_mean_quality(alert) >= (
        result.window_mean_quality(trad) - 0.01
    )

    # Both recover after the burst: back to the big traditional model.
    assert alert.model[-5].startswith("sparse_resnet50")
    assert np.mean(alert.xi_mean[-10:]) < 1.3
