"""Bench: regenerate Figure 4 (latency variance, quiet environment)."""

from __future__ import annotations

from repro.experiments import fig04_variability


def test_fig04(once):
    result = once(fig04_variability.run, n_samples=60)
    # Out-of-memory combinations on the Embedded board.
    assert ("IMG1", "Embedded") in result.skipped
    assert ("NLP2", "Embedded") in result.skipped
    # Image inputs vary little; NLP1 varies a lot (sentence lengths).
    nlp = result.box("NLP1", "CPU1")
    img = result.box("IMG2", "CPU1")
    assert nlp.iqr_ratio > 1.3
    assert img.iqr_ratio < 1.2
    # Platform ordering: GPU << CPUs << Embedded on CNNs.
    assert (
        result.box("IMG2", "GPU").median_s
        < result.box("IMG2", "CPU2").median_s
        < result.box("IMG2", "Embedded").median_s
    )
