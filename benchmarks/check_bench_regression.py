"""CI bench-regression gate: keep the perf trajectory honest.

Re-measures the repository's throughput benchmarks with short windows
and compares their *speedup ratios* against the committed
``BENCH_*.json`` baselines at the repository root.  Ratios (batch vs
scalar, fused vs unfused) are machine-relative, so they transfer from
the box that wrote the baseline to whatever runner CI lands on, where
absolute throughput numbers would not.  A measured ratio more than
``--tolerance`` (default 30%) below its committed value fails the
gate; the slack absorbs runner noise and the short measurement
windows.

Robustness rules (so the gate never cries wolf):

* a missing baseline file skips that benchmark with a notice;
* a metric absent from the baseline (older JSON shape) skips that
  metric with a notice;
* only ratio metrics are gated — absolute inputs/second numbers are
  informational only;
* the executor's pool ratios additionally depend on the runner's core
  count, so they are listed as ``cpu_gated_metrics`` and compared
  only when the committed artifact's recorded ``cpu_count`` matches
  the measuring box's (a 1-CPU container pins meaningless pool
  numbers for a 16-core runner, and vice versa).

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_bench_regression.py
    PYTHONPATH=src python benchmarks/check_bench_regression.py --tolerance 0.5
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: (baseline file, bench module file, measure call, dotted ratio metrics).
CHECKS = (
    {
        "name": "decide",
        "baseline": "BENCH_decide.json",
        "module": "bench_decide_throughput.py",
        "measure": lambda module: module.run(min_seconds=0.25),
        "metrics": ("speedup", "multi_goal.speedup"),
    },
    {
        "name": "oracle",
        "baseline": "BENCH_oracle.json",
        "module": "bench_oracle_throughput.py",
        "measure": lambda module: module.run(min_seconds=0.2),
        "metrics": (
            "grid_speedup",
            "static_speedup",
            "decide_speedup",
            "speedup",
        ),
    },
    {
        "name": "harness",
        "baseline": "BENCH_harness.json",
        "module": "bench_harness_throughput.py",
        "measure": lambda module: module.quick_metrics(min_seconds=0.15),
        "metrics": (
            "serving.min_speedup",
            "cell_fusion.feedback_free.speedup",
            "cell_fusion.table4.speedup",
            "lockstep.speedup",
            "cross_scheme.speedup",
            "serving_frontend.relative_throughput",
            "serving_frontend.batching.speedup",
        ),
        # Pool ratios only transfer between same-core-count boxes:
        # each dotted metric is compared only when the baseline
        # section's recorded cpu_count equals os.cpu_count().
        "cpu_gated_metrics": (
            "executor.workers.2.speedup_vs_serial",
            "sweep.workers.2.store_speedup",
        ),
    },
)


def _cpu_gate_passes(baseline, metric: str) -> bool:
    """Whether the baseline's section was written on a same-CPU box.

    The section is the metric's first dotted component; its
    ``cpu_count`` records the core count of the box that wrote the
    committed artifact.  An artifact predating the field (or written
    on a different box) skips the comparison rather than gating on
    numbers that do not transfer.  A ``workers.<N>`` ratio *against a
    serial baseline* (``speedup_vs_serial``) is additionally skipped
    when the box has fewer than N cores: with the pool pinned to one
    core the ratio measures nothing but process overhead, and
    overhead noise would gate the build.  Pool-vs-pool ratios at the
    same worker count (the sweep's ``store_speedup``) carry no such
    clause — both arms timeslice identically, so the ratio measures
    duplicated work and transfers to any box with the committed
    cpu_count.
    """
    section = metric.split(".", 1)[0]
    committed_cpus = _dig(baseline, f"{section}.cpu_count")
    if committed_cpus is None or committed_cpus != os.cpu_count():
        return False
    parts = metric.split(".")
    if "workers" in parts and parts[-1] == "speedup_vs_serial":
        workers = int(parts[parts.index("workers") + 1])
        if os.cpu_count() < workers:
            return False
    return True


def _load_module(filename: str):
    path = BENCH_DIR / filename
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _dig(tree, dotted: str):
    """Fetch a dotted path out of nested dicts; None when absent."""
    node = tree
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check(tolerance: float) -> int:
    failures = 0
    for entry in CHECKS:
        baseline_path = REPO_ROOT / entry["baseline"]
        if not baseline_path.exists():
            print(f"[skip] {entry['name']}: no {entry['baseline']} baseline")
            continue
        baseline = json.loads(baseline_path.read_text())
        wanted = [
            (metric, _dig(baseline, metric)) for metric in entry["metrics"]
        ]
        gated = [(metric, value) for metric, value in wanted if value is not None]
        for metric, value in wanted:
            if value is None:
                print(
                    f"[skip] {entry['name']}.{metric}: absent from baseline"
                )
        for metric in entry.get("cpu_gated_metrics", ()):
            value = _dig(baseline, metric)
            if value is None:
                print(
                    f"[skip] {entry['name']}.{metric}: absent from baseline"
                )
            elif not _cpu_gate_passes(baseline, metric):
                print(
                    f"[skip] {entry['name']}.{metric}: baseline written on "
                    f"a different core count than this box "
                    f"(os.cpu_count()={os.cpu_count()})"
                )
            else:
                gated.append((metric, value))
        if not gated:
            continue
        module = _load_module(entry["module"])
        measured_tree = entry["measure"](module)
        for metric, committed in gated:
            measured = _dig(measured_tree, metric)
            if measured is None:
                print(f"[skip] {entry['name']}.{metric}: not measured")
                continue
            floor = committed * (1.0 - tolerance)
            status = "ok" if measured >= floor else "FAIL"
            if status == "FAIL":
                failures += 1
            print(
                f"[{status}] {entry['name']}.{metric}: measured "
                f"{measured:.2f}x vs committed {committed:.2f}x "
                f"(floor {floor:.2f}x)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below the committed ratio "
        "(default 0.30 = fail on >30%% regression)",
    )
    args = parser.parse_args()
    failures = check(args.tolerance)
    if failures:
        print(f"bench regression gate: {failures} metric(s) regressed >"
              f"{args.tolerance:.0%}")
        return 1
    print("bench regression gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
