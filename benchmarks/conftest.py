"""Benchmark configuration: single-round, warm benchmarks.

Each bench regenerates one paper figure/table at a reduced-but-
meaningful scale and asserts its shape claims; pytest-benchmark
records the generation cost.  EXPERIMENTS.md records the paper-vs-
measured numbers from full-scale runs of the same drivers.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def once(benchmark):
    """Run the benched callable exactly once (experiments are heavy)."""
    benchmark.pedantic.__self__  # touch to assert the fixture exists

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                  iterations=1)

    return runner
