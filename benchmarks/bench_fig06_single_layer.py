"""Bench: regenerate Figure 6 (single-layer vs combined oracles)."""

from __future__ import annotations

from repro.experiments import fig06_single_layer


def test_fig06(once):
    result = once(fig06_single_layer.run, n_inputs=40)
    # Combined meets everything App-level does, with less energy.
    assert result.feasible_fraction("combined") >= result.feasible_fraction("app")
    # App-level wastes substantial energy (paper: ~60% more on average).
    assert result.mean_overhead_vs_combined("app") > 1.3
    # Sys-level cannot meet tight deadlines at all: the pinned
    # highest-accuracy DNN is too slow (paper: infeasible below 0.3 s;
    # our CPU1 calibration moves that crossover to ~1 s).
    assert result.feasible_fraction("sys") < result.feasible_fraction("combined")
    for outcome in result.outcomes:
        if outcome.deadline_s <= 0.5:
            assert outcome.sys_energy_j == fig06_single_layer.INFEASIBLE
