"""Bench: regenerate Figure 2 (42-model trade-off scatter)."""

from __future__ import annotations

from repro.experiments import fig02_tradeoffs


def test_fig02(once):
    result = once(fig02_tradeoffs.run, n_inputs=20)
    # Paper: ~18x latency, ~7.8x error, >20x energy spreads.
    assert 15.0 < result.latency_spread < 22.0
    assert 7.0 < result.error_spread < 9.0
    assert result.energy_spread > 18.0
    # A real frontier: several hull vertices, many dominated models.
    assert len(result.hull) >= 4
    assert result.n_dominated >= 10
