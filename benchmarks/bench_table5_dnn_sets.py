"""Bench: regenerate Table 5 (ALERT's DNN candidate sets)."""

from __future__ import annotations

from repro.experiments import table5_dnn_sets


def test_table5(once):
    result = once(
        table5_dnn_sets.run,
        platforms=("CPU1",),
        envs=("default", "memory"),
        objectives=("min_energy",),
        settings_stride=3,
        n_inputs=100,
    )
    # "ALERT works well with all three DNN sets": every variant's
    # normalised energy is in the same band as OracleStatic.
    for cell in result.cells.values():
        for scheme in ("ALERT", "ALERT-Any", "ALERT-Trad"):
            value = cell[scheme].normalized_objective
            if value == value:  # skip NaN (all-violated cells)
                assert 0.5 < value < 1.8
    # The mixed set never violates more than both restricted sets.
    assert result.violated_settings("ALERT") <= max(
        result.violated_settings("ALERT-Any"),
        result.violated_settings("ALERT-Trad"),
    )
