"""Bench: regenerate a Table 4 / Figure 7 cell (the headline result).

One (platform, task, environment) cell with all schemes and both
objectives; the full-sweep numbers live in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments import table4_overall
from repro.experiments.table4_overall import CellKey


def test_table4_cpu1_image_memory(once):
    result = once(
        table4_overall.run,
        platforms=("CPU1",),
        tasks=("image",),
        envs=("memory",),
        schemes=(
            "ALERT",
            "ALERT-Any",
            "Sys-only",
            "App-only",
            "No-coord",
            "Oracle",
            "OracleStatic",
        ),
        objectives=("min_energy", "min_error"),
        settings_stride=3,
        n_inputs=100,
    )
    energy_cell = result.cells[
        CellKey("CPU1", "image", "memory", "min_energy")
    ]
    # Paper orderings (minimise-energy): the single-layer and
    # uncoordinated baselines waste energy or violate; ALERT tracks
    # the oracles.
    assert energy_cell["App-only"].normalized_objective > 2.0
    assert energy_cell["No-coord"].normalized_objective > 1.5
    assert energy_cell["ALERT"].normalized_objective < 1.2
    assert energy_cell["Oracle"].normalized_objective <= 1.02
    assert (
        energy_cell["Sys-only"].violated_settings
        > energy_cell["ALERT"].violated_settings
    )
    # ALERT violates no settings the Oracle does not also violate.
    assert (
        energy_cell["ALERT"].violated_settings
        <= energy_cell["Oracle"].violated_settings
    )

    error_cell = result.cells[CellKey("CPU1", "image", "memory", "min_error")]
    # Minimise-error: the budget-oblivious baselines blow their energy
    # budgets on most settings; Sys-only leaves accuracy on the table.
    assert error_cell["App-only"].violated_settings >= 6
    assert error_cell["No-coord"].violated_settings >= 6
    assert (
        error_cell["Sys-only"].normalized_objective
        > error_cell["Oracle"].normalized_objective
    )
    means = result.harmonic_means("min_energy")
    assert means["ALERT"] < means["App-only"]
