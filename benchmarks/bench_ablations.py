"""Benches: the DESIGN.md section 6 ablations."""

from __future__ import annotations

from repro.experiments import ablations


def test_ablation_global_xi(once):
    rows = once(ablations.run_global_xi, settings_stride=6, n_inputs=80)
    alert, per_config = rows
    # The global slowdown factor (Idea 1) never violates more settings
    # than starving per-configuration filters.
    assert alert.violated_settings <= per_config.violated_settings


def test_ablation_adaptive_q(once):
    rows = once(ablations.run_adaptive_q, settings_stride=6, n_inputs=80)
    adaptive, fixed = rows
    assert adaptive.variant == "ALERT(adaptive-Q)"
    # Frozen process noise keeps the variance pinned at its cap, which
    # costs energy (permanent conservatism) or violations; adaptive Q
    # is never worse on violations by more than one setting.
    assert adaptive.violated_settings <= fixed.violated_settings + 1


def test_ablation_prth(once):
    rows = once(
        ablations.run_prth, thresholds=(None, 0.9, 0.99), settings_stride=6,
        n_inputs=80,
    )
    assert set(rows) == {"default", "prth=0.9", "prth=0.99"}
    # Tighter probabilistic guarantees cannot be cheaper: energy is
    # monotone (weakly) in the threshold over non-violated settings.
    default = rows["default"].mean_objective
    strict = rows["prth=0.99"].mean_objective
    if default == default and strict == strict:  # both defined
        assert strict >= default * 0.95
