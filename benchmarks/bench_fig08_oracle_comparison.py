"""Bench: regenerate Figure 8 (ALERT vs Oracle/OracleStatic whiskers)."""

from __future__ import annotations

from repro.experiments import fig08_oracle_comparison


def test_fig08(once):
    result = once(
        fig08_oracle_comparison.run,
        envs=("default", "memory"),
        settings_stride=4,
        n_inputs=80,
    )
    for env in ("default", "memory"):
        static = result.whisker("OracleStatic", env)
        oracle = result.whisker("Oracle", env)
        alert = result.whisker("ALERT", env)
        # Oracle is the floor; ALERT tracks it closely.
        assert oracle.mean_j <= static.mean_j * 1.02
        assert alert.mean_j <= oracle.mean_j * 1.25
        assert alert.min_j >= oracle.min_j * 0.8
    # Dynamic adaptation pays more under contention than in the quiet
    # environment (paper Section 5.2: more variance, more benefit).
    quiet_gap = result.whisker("OracleStatic", "default").mean_j / result.whisker(
        "Oracle", "default"
    ).mean_j
    memory_gap = result.whisker("OracleStatic", "memory").mean_j / result.whisker(
        "Oracle", "memory"
    ).mean_j
    assert memory_gap >= quiet_gap * 0.98
