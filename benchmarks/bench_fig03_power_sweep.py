"""Bench: regenerate Figure 3 (ResNet50 power sweep on CPU2)."""

from __future__ import annotations

from repro.experiments import fig03_power_sweep
from repro.hw.machine import CPU2


def test_fig03(once):
    result = once(fig03_power_sweep.run, n_powers=31, n_inputs=20)
    assert len(result.points) == 31
    # Paper: fastest cap >2x faster than slowest; ~1.3x energy spread.
    assert result.latency_ratio > 2.0
    assert 1.15 < result.energy_spread < 1.6
    midpoint = (CPU2.power_min_w + CPU2.power_max_w) / 2
    assert result.min_energy_power_w < midpoint
    assert result.max_energy_power_w > midpoint
    # Latency decreases monotonically with the cap; energy does not
    # (the non-smooth trade-off of Section 2.1).
    latencies = [p.latency_s for p in result.points]
    energies = [p.period_energy_j for p in result.points]
    assert latencies == sorted(latencies, reverse=True)
    assert energies != sorted(energies) and energies != sorted(
        energies, reverse=True
    )
